//! The JSON phase-trace format: phased workloads as data files.
//!
//! A *phase trace* describes a [`crate::PhasedWorkload`] without
//! writing Rust: each phase names a base workload from the Table-I
//! catalogue ([`crate::by_name`]) and optionally overrides individual
//! demand axes. The workspace is offline and serde-free, so the loader
//! ships its own minimal JSON reader; every malformed input maps to a
//! typed [`TraceError`] naming exactly what is wrong.
//!
//! # Format
//!
//! ```json
//! {
//!   "name": "sc-flip",
//!   "total_traffic_gb": 600.0,
//!   "phases": [
//!     {"workload": "SC", "duration_s": 10.0,
//!      "override": {"reads_mbps": 42000.0, "latency_sensitivity": 0.02}},
//!     {"workload": "SC", "duration_s": 10.0}
//!   ]
//! }
//! ```
//!
//! * `name` — workload name used in reports.
//! * `total_traffic_gb` — the workload-level traffic budget shared by all
//!   phases (positive).
//! * `phases[]` — at least one phase; `workload` is a catalogue name
//!   (`SC`, `OC`, `ON`, `SP.B`, `FT.C`, …), `duration_s` a positive
//!   number, and `override` an optional object setting any of:
//!   `reads_mbps`, `writes_mbps`, `private_frac`, `latency_sensitivity`,
//!   `serial_frac`, `multinode_penalty`. Page counts cannot be overridden
//!   — the memory layout is fixed at spawn from phase 0's workload.
//!
//! # Examples
//!
//! ```
//! let json = r#"{
//!   "name": "flip", "total_traffic_gb": 300.0,
//!   "phases": [
//!     {"workload": "SC", "duration_s": 5.0,
//!      "override": {"reads_mbps": 42000.0}},
//!     {"workload": "SC", "duration_s": 5.0}
//!   ]
//! }"#;
//! let w = bwap_workloads::trace::parse_phase_trace(json)?;
//! assert_eq!(w.name, "flip");
//! assert_eq!(w.phases[0].spec.reads_mbps, 42000.0);
//! # Ok::<(), bwap_workloads::trace::TraceError>(())
//! ```

use crate::phased::{Phase, PhaseError, PhasedWorkload};
use std::fmt;

/// Why a phase-trace document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The document is not valid JSON.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What the reader expected there.
        message: String,
    },
    /// A required field is missing.
    MissingField {
        /// Which object lacks it (`"trace"` or `"phases[i]"`).
        context: String,
        /// The absent field.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    WrongType {
        /// Which object/field.
        context: String,
        /// What the format requires.
        expected: &'static str,
    },
    /// A phase names a workload the catalogue does not have.
    UnknownWorkload {
        /// Phase index.
        phase: usize,
        /// The unknown name.
        name: String,
    },
    /// An `override` object sets an axis that does not exist (or cannot
    /// be overridden, like page counts).
    UnknownOverride {
        /// Phase index.
        phase: usize,
        /// The rejected key.
        key: String,
    },
    /// The assembled workload failed [`PhasedWorkload::new`] validation.
    Invalid(PhaseError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            TraceError::MissingField { context, field } => {
                write!(f, "{context}: missing field {field:?}")
            }
            TraceError::WrongType { context, expected } => {
                write!(f, "{context}: expected {expected}")
            }
            TraceError::UnknownWorkload { phase, name } => {
                write!(f, "phases[{phase}]: unknown workload {name:?}")
            }
            TraceError::UnknownOverride { phase, key } => {
                write!(f, "phases[{phase}]: unknown override axis {key:?}")
            }
            TraceError::Invalid(e) => write!(f, "invalid phased workload: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<PhaseError> for TraceError {
    fn from(e: PhaseError) -> Self {
        TraceError::Invalid(e)
    }
}

/// Parse a phase-trace JSON document into a validated [`PhasedWorkload`].
pub fn parse_phase_trace(json: &str) -> Result<PhasedWorkload, TraceError> {
    let doc = Json::parse(json)?;
    let top = doc.object("trace")?;
    let name = get(top, "trace", "name")?.string("trace.name")?;
    let total = get(top, "trace", "total_traffic_gb")?.number("trace.total_traffic_gb")?;
    let phases_json = get(top, "trace", "phases")?.array("trace.phases")?;
    let mut phases = Vec::with_capacity(phases_json.len());
    for (i, p) in phases_json.iter().enumerate() {
        let ctx = format!("phases[{i}]");
        let obj = p.object(&ctx)?;
        let wname = get(obj, &ctx, "workload")?.string(&format!("{ctx}.workload"))?;
        let mut spec = crate::by_name(wname)
            .ok_or_else(|| TraceError::UnknownWorkload { phase: i, name: wname.to_string() })?;
        let duration_s = get(obj, &ctx, "duration_s")?.number(&format!("{ctx}.duration_s"))?;
        if let Some(over) = obj.iter().find(|(k, _)| k == "override") {
            for (key, value) in over.1.object(&format!("{ctx}.override"))? {
                let v = value.number(&format!("{ctx}.override.{key}"))?;
                match key.as_str() {
                    "reads_mbps" => spec.reads_mbps = v,
                    "writes_mbps" => spec.writes_mbps = v,
                    "private_frac" => spec.private_frac = v,
                    "latency_sensitivity" => spec.latency_sensitivity = v,
                    "serial_frac" => spec.serial_frac = v,
                    "multinode_penalty" => spec.multinode_penalty = v,
                    other => {
                        return Err(TraceError::UnknownOverride {
                            phase: i,
                            key: other.to_string(),
                        })
                    }
                }
            }
        }
        phases.push(Phase::new(spec, duration_s));
    }
    Ok(PhasedWorkload::new(name, phases, total)?)
}

/// Load a phase trace from a file (convenience around
/// [`parse_phase_trace`]). I/O failures surface as a JSON error at byte 0
/// carrying the OS message.
pub fn load_phase_trace(path: &std::path::Path) -> Result<PhasedWorkload, TraceError> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Json {
        offset: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_phase_trace(&text)
}

/// The minimal JSON value model the trace format needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, TraceError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(v)
    }

    fn object(&self, ctx: &str) -> Result<&[(String, Json)], TraceError> {
        match self {
            Json::Object(o) => Ok(o),
            _ => Err(TraceError::WrongType { context: ctx.to_string(), expected: "an object" }),
        }
    }

    fn array(&self, ctx: &str) -> Result<&[Json], TraceError> {
        match self {
            Json::Array(a) => Ok(a),
            _ => Err(TraceError::WrongType { context: ctx.to_string(), expected: "an array" }),
        }
    }

    fn string(&self, ctx: &str) -> Result<&str, TraceError> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(TraceError::WrongType { context: ctx.to_string(), expected: "a string" }),
        }
    }

    fn number(&self, ctx: &str) -> Result<f64, TraceError> {
        match self {
            Json::Number(n) => Ok(*n),
            _ => Err(TraceError::WrongType { context: ctx.to_string(), expected: "a number" }),
        }
    }
}

fn get<'a>(
    obj: &'a [(String, Json)],
    context: &str,
    field: &'static str,
) -> Result<&'a Json, TraceError> {
    obj.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| TraceError::MissingField { context: context.to_string(), field })
}

/// Recursive-descent reader over the document bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &str) -> TraceError {
        TraceError::Json { offset: self.pos, message: format!("expected {expected}") }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("{:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, TraceError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object_value(),
            Some(b'[') => self.array_value(),
            Some(b'"') => Ok(Json::String(self.string_value()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number_value(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(word))
        }
    }

    fn number_value(&mut self) -> Result<Json, TraceError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.err("a number"))
    }

    /// Four hex digits starting at `at`, if present.
    fn hex4(&self, at: usize) -> Option<u32> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
    }

    fn string_value(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).ok_or_else(|| self.err("an escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self
                                .hex4(self.pos + 1)
                                .ok_or_else(|| self.err("a \\uXXXX escape"))?;
                            self.pos += 4;
                            let scalar = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: valid JSON encodes
                                // non-BMP characters as a \uXXXX\uXXXX
                                // pair; combine it with the low half.
                                let low = (self.bytes.get(self.pos + 1..self.pos + 3)
                                    == Some(&br"\u"[..]))
                                .then(|| self.hex4(self.pos + 3))
                                .flatten()
                                .filter(|l| (0xdc00..0xe000).contains(l))
                                .ok_or_else(|| self.err("a low-surrogate \\uXXXX escape"))?;
                                self.pos += 6;
                                0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("a \\uXXXX escape"))?,
                            );
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("valid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array_value(&mut self) -> Result<Json, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object_value(&mut self) -> Result<Json, TraceError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string_value()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            self.expect(b',')?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "name": "sc-flip",
      "total_traffic_gb": 600.0,
      "phases": [
        {"workload": "SC", "duration_s": 10.0,
         "override": {"reads_mbps": 42000.0, "latency_sensitivity": 0.02}},
        {"workload": "SC", "duration_s": 10.0}
      ]
    }"#;

    #[test]
    fn parses_the_worked_example() {
        let w = parse_phase_trace(GOOD).unwrap();
        assert_eq!(w.name, "sc-flip");
        assert_eq!(w.total_traffic_gb, 600.0);
        assert_eq!(w.phases.len(), 2);
        assert_eq!(w.phases[0].spec.reads_mbps, 42_000.0);
        assert_eq!(w.phases[0].spec.latency_sensitivity, 0.02);
        // Unoverridden axes come from the catalogue entry.
        assert_eq!(w.phases[1].spec.reads_mbps, crate::apps::streamcluster().reads_mbps);
    }

    #[test]
    fn load_from_file_roundtrips() {
        let dir = std::env::temp_dir().join("bwap-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.json");
        std::fs::write(&path, GOOD).unwrap();
        let w = load_phase_trace(&path).unwrap();
        assert_eq!(w.name, "sc-flip");
        assert!(load_phase_trace(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_json_reports_offset() {
        let err = parse_phase_trace("{\"name\": ").unwrap_err();
        assert!(matches!(err, TraceError::Json { .. }), "{err}");
        let err = parse_phase_trace("{} trailing").unwrap_err();
        assert!(err.to_string().contains("end of document"), "{err}");
    }

    #[test]
    fn missing_fields_are_named() {
        let err = parse_phase_trace(r#"{"total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert_eq!(err, TraceError::MissingField { context: "trace".into(), field: "name" });
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"duration_s": 1}]}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            TraceError::MissingField { context: "phases[0]".into(), field: "workload" }
        );
    }

    #[test]
    fn wrong_types_are_rejected() {
        let err =
            parse_phase_trace(r#"{"name": 3, "total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert!(
            matches!(err, TraceError::WrongType { ref context, .. } if context == "trace.name")
        );
        let err =
            parse_phase_trace(r#"{"name": "x", "total_traffic_gb": 1, "phases": 9}"#).unwrap_err();
        assert!(
            matches!(err, TraceError::WrongType { ref context, .. } if context == "trace.phases")
        );
    }

    #[test]
    fn unknown_workload_and_override_axes_are_rejected() {
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "NOPE", "duration_s": 1}]}"#,
        )
        .unwrap_err();
        assert_eq!(err, TraceError::UnknownWorkload { phase: 0, name: "NOPE".into() });
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "SC", "duration_s": 1,
                            "override": {"shared_pages": 5}}]}"#,
        )
        .unwrap_err();
        assert_eq!(err, TraceError::UnknownOverride { phase: 0, key: "shared_pages".into() });
    }

    #[test]
    fn semantic_validation_flows_through() {
        let err =
            parse_phase_trace(r#"{"name": "x", "total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert_eq!(err, TraceError::Invalid(PhaseError::NoPhases));
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "SC", "duration_s": -2}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Invalid(PhaseError::BadDuration { phase: 0, .. })));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": ["\nA", {"b": true}, null, -1.5e2]}"#).unwrap();
        let obj = v.object("t").unwrap();
        let arr = obj[0].1.array("t").unwrap();
        assert_eq!(arr[0], Json::String("\nA".into()));
        assert_eq!(arr[3], Json::Number(-150.0));
    }

    #[test]
    fn parser_handles_unicode_escapes_including_surrogate_pairs() {
        // BMP escape, a surrogate-pair-encoded non-BMP character (🚀),
        // and raw UTF-8 all round-trip.
        let v = Json::parse(r#""\u00e9 \ud83d\ude80 é""#).unwrap();
        assert_eq!(v, Json::String("é 🚀 é".into()));
        // A lone high surrogate is not valid JSON.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
    }
}
