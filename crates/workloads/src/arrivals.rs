//! The JSON arrival-trace format: open-loop job streams as data files.
//!
//! An *arrival trace* describes the job stream a fleet serves (see
//! `docs/FLEET.md`) without writing Rust: each job names a base workload
//! from the Table-I catalogue ([`crate::by_name`]), the simulated time it
//! arrives, and optionally a forced departure time and a
//! [`crate::WorkloadSpec::scaled_down`] divisor. Like the phase-trace
//! loader ([`crate::trace`]), it reuses the crate's minimal JSON reader
//! ([`crate::json`]) and maps every malformed input to a typed
//! [`ArrivalError`] naming exactly what is wrong.
//!
//! # Format
//!
//! ```json
//! {
//!   "jobs": [
//!     {"at_s": 0.0, "workload": "SC", "scale_down": 32.0},
//!     {"at_s": 1.5, "workload": "OC", "depart_s": 40.0}
//!   ]
//! }
//! ```
//!
//! * `jobs[]` — at least one job; `workload` is a catalogue name (`SC`,
//!   `OC`, `ON`, `SP.B`, `FT.C`, …), `at_s` a finite non-negative arrival
//!   time in simulated seconds.
//! * `depart_s` — optional forced departure time, strictly after `at_s`:
//!   the job leaves the machine then even if its work is unfinished.
//! * `scale_down` — optional positive divisor applied via
//!   [`crate::WorkloadSpec::scaled_down`] (smaller jobs, same ratios).
//!
//! Jobs may be listed in any order; the parser sorts them by arrival time
//! (stably, so equal-time jobs keep their document order).
//!
//! # Examples
//!
//! ```
//! let json = r#"{"jobs": [
//!   {"at_s": 2.0, "workload": "OC", "scale_down": 16.0},
//!   {"at_s": 0.5, "workload": "SC", "depart_s": 30.0}
//! ]}"#;
//! let jobs = bwap_workloads::arrivals::parse_arrival_trace(json)?;
//! assert_eq!(jobs.len(), 2);
//! // Sorted by arrival time.
//! assert_eq!(jobs[0].workload.name, "SC");
//! assert_eq!(jobs[0].depart_s, Some(30.0));
//! assert_eq!(jobs[1].at_s, 2.0);
//! # Ok::<(), bwap_workloads::arrivals::ArrivalError>(())
//! ```

use crate::json::{Json, JsonError};
use crate::spec::WorkloadSpec;
use std::fmt;

/// One job of an arrival trace: a catalogue workload landing at a
/// simulated time, optionally forced to depart later.
#[derive(Debug, Clone)]
pub struct ArrivalEvent {
    /// Simulated arrival time, seconds (finite, non-negative).
    pub at_s: f64,
    /// The resolved workload (catalogue entry, scaled if requested).
    pub workload: WorkloadSpec,
    /// Forced departure time, strictly after `at_s`, if any.
    pub depart_s: Option<f64>,
}

/// Why an arrival-trace document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalError {
    /// The document is not valid JSON.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What the reader expected there.
        message: String,
    },
    /// A required field is missing.
    MissingField {
        /// Which object lacks it (`"arrivals"` or `"jobs[i]"`).
        context: String,
        /// The absent field.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    WrongType {
        /// Which object/field.
        context: String,
        /// What the format requires.
        expected: &'static str,
    },
    /// A job names a workload the catalogue does not have.
    UnknownWorkload {
        /// Job index (document order).
        job: usize,
        /// The unknown name.
        name: String,
    },
    /// A time or scale field holds a semantically invalid value.
    BadValue {
        /// Job index (document order).
        job: usize,
        /// The offending field.
        field: &'static str,
        /// What the format requires.
        requirement: &'static str,
    },
    /// The trace declares no jobs at all.
    NoJobs,
}

impl fmt::Display for ArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalError::Json { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            ArrivalError::MissingField { context, field } => {
                write!(f, "{context}: missing field {field:?}")
            }
            ArrivalError::WrongType { context, expected } => {
                write!(f, "{context}: expected {expected}")
            }
            ArrivalError::UnknownWorkload { job, name } => {
                write!(f, "jobs[{job}]: unknown workload {name:?}")
            }
            ArrivalError::BadValue { job, field, requirement } => {
                write!(f, "jobs[{job}].{field}: must be {requirement}")
            }
            ArrivalError::NoJobs => write!(f, "arrival trace declares no jobs"),
        }
    }
}

impl std::error::Error for ArrivalError {}

impl From<JsonError> for ArrivalError {
    fn from(e: JsonError) -> Self {
        ArrivalError::Json { offset: e.offset, message: e.message }
    }
}

/// Parse an arrival-trace JSON document into jobs sorted by arrival time.
pub fn parse_arrival_trace(json: &str) -> Result<Vec<ArrivalEvent>, ArrivalError> {
    let doc = Json::parse(json)?;
    let top = object(&doc, "arrivals")?;
    let jobs_json = array(get(top, "arrivals", "jobs")?, "arrivals.jobs")?;
    if jobs_json.is_empty() {
        return Err(ArrivalError::NoJobs);
    }
    let mut jobs = Vec::with_capacity(jobs_json.len());
    for (i, j) in jobs_json.iter().enumerate() {
        let ctx = format!("jobs[{i}]");
        let obj = object(j, &ctx)?;
        let wname = string(get(obj, &ctx, "workload")?, &format!("{ctx}.workload"))?;
        let mut workload = crate::by_name(wname)
            .ok_or_else(|| ArrivalError::UnknownWorkload { job: i, name: wname.to_string() })?;
        let at_s = number(get(obj, &ctx, "at_s")?, &format!("{ctx}.at_s"))?;
        if !at_s.is_finite() || at_s < 0.0 {
            return Err(ArrivalError::BadValue {
                job: i,
                field: "at_s",
                requirement: "a finite non-negative number",
            });
        }
        let depart_s = match obj.iter().find(|(k, _)| k == "depart_s") {
            Some((_, v)) => {
                let d = number(v, &format!("{ctx}.depart_s"))?;
                if !d.is_finite() || d <= at_s {
                    return Err(ArrivalError::BadValue {
                        job: i,
                        field: "depart_s",
                        requirement: "a finite number strictly after at_s",
                    });
                }
                Some(d)
            }
            None => None,
        };
        if let Some((_, v)) = obj.iter().find(|(k, _)| k == "scale_down") {
            let s = number(v, &format!("{ctx}.scale_down"))?;
            if !s.is_finite() || s <= 0.0 {
                return Err(ArrivalError::BadValue {
                    job: i,
                    field: "scale_down",
                    requirement: "a finite positive number",
                });
            }
            workload = workload.scaled_down(s);
        }
        jobs.push(ArrivalEvent { at_s, workload, depart_s });
    }
    jobs.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite arrival times"));
    Ok(jobs)
}

/// Load an arrival trace from a file (convenience around
/// [`parse_arrival_trace`]). I/O failures surface as a JSON error at byte
/// 0 carrying the OS message.
pub fn load_arrival_trace(path: &std::path::Path) -> Result<Vec<ArrivalEvent>, ArrivalError> {
    let text = std::fs::read_to_string(path).map_err(|e| ArrivalError::Json {
        offset: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_arrival_trace(&text)
}

fn object<'a>(v: &'a Json, ctx: &str) -> Result<&'a [(String, Json)], ArrivalError> {
    v.as_object()
        .ok_or_else(|| ArrivalError::WrongType { context: ctx.to_string(), expected: "an object" })
}

fn array<'a>(v: &'a Json, ctx: &str) -> Result<&'a [Json], ArrivalError> {
    v.as_array()
        .ok_or_else(|| ArrivalError::WrongType { context: ctx.to_string(), expected: "an array" })
}

fn string<'a>(v: &'a Json, ctx: &str) -> Result<&'a str, ArrivalError> {
    v.as_str()
        .ok_or_else(|| ArrivalError::WrongType { context: ctx.to_string(), expected: "a string" })
}

fn number(v: &Json, ctx: &str) -> Result<f64, ArrivalError> {
    v.as_f64()
        .ok_or_else(|| ArrivalError::WrongType { context: ctx.to_string(), expected: "a number" })
}

fn get<'a>(
    obj: &'a [(String, Json)],
    context: &str,
    field: &'static str,
) -> Result<&'a Json, ArrivalError> {
    obj.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| ArrivalError::MissingField { context: context.to_string(), field })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"jobs": [
      {"at_s": 2.0, "workload": "OC", "scale_down": 16.0},
      {"at_s": 0.5, "workload": "SC", "depart_s": 30.0},
      {"at_s": 0.5, "workload": "FT.C"}
    ]}"#;

    #[test]
    fn parses_and_sorts_by_arrival() {
        let jobs = parse_arrival_trace(GOOD).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].workload.name, "SC");
        // Equal-time jobs keep document order (stable sort).
        assert_eq!(jobs[1].workload.name, "FT.C");
        assert_eq!(jobs[2].at_s, 2.0);
        assert_eq!(jobs[0].depart_s, Some(30.0));
        assert_eq!(jobs[2].depart_s, None);
        // scale_down divided the traffic budget.
        let oc = crate::ocean_cp();
        assert!(jobs[2].workload.total_traffic_gb < oc.total_traffic_gb);
    }

    #[test]
    fn load_from_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("bwap-arrivals-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.json");
        std::fs::write(&path, GOOD).unwrap();
        assert_eq!(load_arrival_trace(&path).unwrap().len(), 3);
        assert!(load_arrival_trace(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_documents_produce_typed_errors() {
        assert!(matches!(
            parse_arrival_trace("{\"jobs\": ").unwrap_err(),
            ArrivalError::Json { .. }
        ));
        assert_eq!(parse_arrival_trace(r#"{"jobs": []}"#).unwrap_err(), ArrivalError::NoJobs);
        assert_eq!(
            parse_arrival_trace(r#"{}"#).unwrap_err(),
            ArrivalError::MissingField { context: "arrivals".into(), field: "jobs" }
        );
        assert_eq!(
            parse_arrival_trace(r#"{"jobs": [{"at_s": 0}]}"#).unwrap_err(),
            ArrivalError::MissingField { context: "jobs[0]".into(), field: "workload" }
        );
        assert_eq!(
            parse_arrival_trace(r#"{"jobs": [{"at_s": 0, "workload": "NOPE"}]}"#).unwrap_err(),
            ArrivalError::UnknownWorkload { job: 0, name: "NOPE".into() }
        );
        let err = parse_arrival_trace(r#"{"jobs": [{"at_s": -1, "workload": "SC"}]}"#).unwrap_err();
        assert!(matches!(err, ArrivalError::BadValue { job: 0, field: "at_s", .. }), "{err}");
        let err =
            parse_arrival_trace(r#"{"jobs": [{"at_s": 5, "workload": "SC", "depart_s": 5}]}"#)
                .unwrap_err();
        assert!(matches!(err, ArrivalError::BadValue { job: 0, field: "depart_s", .. }), "{err}");
        let err =
            parse_arrival_trace(r#"{"jobs": [{"at_s": 0, "workload": "SC", "scale_down": 0}]}"#)
                .unwrap_err();
        assert!(matches!(err, ArrivalError::BadValue { job: 0, field: "scale_down", .. }), "{err}");
        assert!(matches!(
            parse_arrival_trace(r#"{"jobs": [{"at_s": "zero", "workload": "SC"}]}"#).unwrap_err(),
            ArrivalError::WrongType { .. }
        ));
    }
}
