//! A minimal, serde-free JSON reader shared by the data-file loaders.
//!
//! The workspace is offline and dependency-free, so every tool that
//! consumes JSON — the phase-trace loader ([`crate::trace`]), the
//! campaign explorer and the Chrome-trace validator in `bwap-bench` —
//! reads documents through this one recursive-descent parser instead of
//! each shipping its own. The model is deliberately small: a [`Json`]
//! value tree with typed accessors; schema-specific validation (missing
//! fields, wrong types with helpful context) stays in the loaders.
//!
//! Numbers are parsed as `f64`, which is exact for the integer ranges
//! the repo's artifacts use (timestamps, page counts, event ids all stay
//! well below 2^53).
//!
//! # Examples
//!
//! ```
//! use bwap_workloads::json::Json;
//! let v = Json::parse(r#"{"cells": [{"key": "w0", "ok": true}]}"#)?;
//! let cells = v.get("cells").and_then(Json::as_array).unwrap();
//! assert_eq!(cells[0].get("key").and_then(Json::as_str), Some("w0"));
//! # Ok::<(), bwap_workloads::json::JsonError>(())
//! ```

use std::fmt;

/// A parse failure: where it happened and what the reader expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the reader expected there.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// The minimal JSON value model.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object as an ordered key/value list (duplicate keys kept;
    /// [`Json::get`] returns the first).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(v)
    }

    /// The object's field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// First value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Recursive-descent reader over the document bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &str) -> JsonError {
        JsonError { offset: self.pos, message: format!("expected {expected}") }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("{:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object_value(),
            Some(b'[') => self.array_value(),
            Some(b'"') => Ok(Json::String(self.string_value()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number_value(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(word))
        }
    }

    fn number_value(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.err("a number"))
    }

    /// Four hex digits starting at `at`, if present.
    fn hex4(&self, at: usize) -> Option<u32> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
    }

    fn string_value(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).ok_or_else(|| self.err("an escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self
                                .hex4(self.pos + 1)
                                .ok_or_else(|| self.err("a \\uXXXX escape"))?;
                            self.pos += 4;
                            let scalar = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: valid JSON encodes
                                // non-BMP characters as a \uXXXX\uXXXX
                                // pair; combine it with the low half.
                                let low = (self.bytes.get(self.pos + 1..self.pos + 3)
                                    == Some(&br"\u"[..]))
                                .then(|| self.hex4(self.pos + 3))
                                .flatten()
                                .filter(|l| (0xdc00..0xe000).contains(l))
                                .ok_or_else(|| self.err("a low-surrogate \\uXXXX escape"))?;
                                self.pos += 6;
                                0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("a \\uXXXX escape"))?,
                            );
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("valid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array_value(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string_value()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            self.expect(b',')?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": ["\nA", {"b": true}, null, -1.5e2]}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0], Json::String("\nA".into()));
        assert_eq!(arr[1].get("b").and_then(Json::as_bool), Some(true));
        assert!(arr[2].is_null());
        assert_eq!(arr[3], Json::Number(-150.0));
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        // BMP escape, a surrogate-pair-encoded non-BMP character (🚀),
        // and raw UTF-8 all round-trip.
        let v = Json::parse("\"\\u00e9 \\ud83d\\ude80 é\"").unwrap();
        assert_eq!(v, Json::String("é 🚀 é".into()));
        // A lone high surrogate is not valid JSON.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_reports_offsets() {
        let err = Json::parse("{} trailing").unwrap_err();
        assert!(err.to_string().contains("end of document"), "{err}");
        let err = Json::parse("{\"name\": ").unwrap_err();
        assert_eq!(err.offset, 9);
    }

    #[test]
    fn duplicate_keys_keep_first_on_get() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }
}
