//! Phase-structured workloads: an ordered timeline of demand profiles.
//!
//! The paper's future-work list (§VI) asks BWAP to "dynamically adjust its
//! weight distribution throughout the application's execution time, in
//! order to obtain improved performance for applications whose access
//! patterns change over time". A [`PhasedWorkload`] is the workload-side
//! half of that scenario: an ordered list of [`Phase`]s, each a full
//! [`WorkloadSpec`] demand characterization plus a duration. The timeline
//! cycles (phase 0 → 1 → … → 0 → …) until the workload's total traffic is
//! processed, so a two-phase workload flip-flops between its demand
//! profiles for its whole run.
//!
//! Only the *demand axes* change between phases — bandwidth, read/write
//! mix, private/shared split, latency sensitivity. The memory layout
//! (segment sizes) is fixed at spawn from [`PhasedWorkload::layout_spec`]
//! (phase 0): a real application does not re-`mmap` its working set at a
//! phase boundary, it shifts which pages are hot. A "shrinking footprint"
//! phase is therefore expressed as a shift of traffic between the private
//! and shared segments (see [`oc_footprint_swing`]), not as a resize.
//!
//! Phased workloads can also be loaded from a JSON phase-trace file — see
//! [`crate::trace`] for the format and its validation errors.
//!
//! # Examples
//!
//! Build a two-phase bandwidth flip by hand and translate it for the
//! engine:
//!
//! ```
//! use bwap_topology::machines;
//! use bwap_workloads::{Phase, PhasedWorkload};
//!
//! let calm = bwap_workloads::streamcluster();
//! let mut burst = bwap_workloads::streamcluster();
//! burst.reads_mbps = 42_000.0;
//! burst.latency_sensitivity = 0.02;
//!
//! let flip = PhasedWorkload::new(
//!     "flip",
//!     vec![Phase::new(burst, 10.0), Phase::new(calm, 10.0)],
//!     240.0,
//! )?;
//! assert_eq!(flip.phases.len(), 2);
//!
//! // Per-phase engine profiles; `Some(5.0)` rescales the timeline so a
//! // full cycle lasts 5 s (phases keep their relative durations).
//! let timeline = flip.profiles_for(&machines::machine_b(), Some(5.0));
//! assert_eq!(timeline.len(), 2);
//! assert_eq!(timeline[0].0, 2.5);
//! // Every phase counts work against the same workload-level total.
//! assert_eq!(timeline[1].1.total_traffic_gb, 240.0);
//! # Ok::<(), bwap_workloads::PhaseError>(())
//! ```

use crate::spec::WorkloadSpec;
use bwap_topology::MachineTopology;
use numasim::AppProfile;
use std::fmt;

/// One phase of a [`PhasedWorkload`]: a demand characterization active for
/// `duration_s` simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Demand profile while this phase is active. Page counts of phases
    /// after the first are ignored (layout is fixed at spawn).
    pub spec: WorkloadSpec,
    /// How long the phase lasts, simulated seconds.
    pub duration_s: f64,
}

impl Phase {
    /// A phase from a spec and a duration.
    pub fn new(spec: WorkloadSpec, duration_s: f64) -> Phase {
        Phase { spec, duration_s }
    }
}

/// Validation failure while building a [`PhasedWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseError {
    /// The phase list was empty.
    NoPhases,
    /// A phase duration was not a positive finite number.
    BadDuration {
        /// Index of the offending phase.
        phase: usize,
        /// The rejected duration.
        duration_s: f64,
    },
    /// The workload-level total traffic was not positive.
    BadTotalTraffic(f64),
}

impl fmt::Display for PhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseError::NoPhases => write!(f, "a phased workload needs at least one phase"),
            PhaseError::BadDuration { phase, duration_s } => {
                write!(f, "phase {phase}: duration {duration_s} must be positive and finite")
            }
            PhaseError::BadTotalTraffic(gb) => {
                write!(f, "total_traffic_gb {gb} must be positive")
            }
        }
    }
}

impl std::error::Error for PhaseError {}

/// A workload whose demand characterization changes over time: an ordered,
/// cycling timeline of [`Phase`]s plus a workload-level traffic total.
///
/// See the [module docs](self) for the model and an example; canned
/// phase-flipping variants of the Table-I applications are below
/// ([`sc_bandwidth_flip`], [`ftc_rw_swing`], [`oc_footprint_swing`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedWorkload {
    /// Workload name (report identity, like [`WorkloadSpec::name`]).
    pub name: String,
    /// The timeline, cycled until the total traffic is processed.
    pub phases: Vec<Phase>,
    /// Total traffic to process before completion, GB. Phases share this
    /// one budget — it replaces each phase spec's own `total_traffic_gb`.
    pub total_traffic_gb: f64,
}

impl PhasedWorkload {
    /// Build and validate a phased workload.
    pub fn new(
        name: &str,
        phases: Vec<Phase>,
        total_traffic_gb: f64,
    ) -> Result<PhasedWorkload, PhaseError> {
        if phases.is_empty() {
            return Err(PhaseError::NoPhases);
        }
        for (i, p) in phases.iter().enumerate() {
            if !(p.duration_s > 0.0 && p.duration_s.is_finite()) {
                return Err(PhaseError::BadDuration { phase: i, duration_s: p.duration_s });
            }
        }
        if total_traffic_gb.is_nan() || total_traffic_gb <= 0.0 {
            return Err(PhaseError::BadTotalTraffic(total_traffic_gb));
        }
        Ok(PhasedWorkload { name: name.to_string(), phases, total_traffic_gb })
    }

    /// The spec that defines the memory layout (segment sizes) at spawn:
    /// phase 0. Later phases only contribute demand axes.
    pub fn layout_spec(&self) -> &WorkloadSpec {
        &self.phases[0].spec
    }

    /// Duration of one full cycle through the timeline, seconds.
    pub fn cycle_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Translate the timeline into engine profiles for `machine`: one
    /// `(duration_s, profile)` per phase, in order. Every profile carries
    /// the workload-level [`PhasedWorkload::total_traffic_gb`] (machine
    /// demand scaling applies per phase, exactly as in
    /// [`WorkloadSpec::profile_for`]). `cycle_period` rescales the whole
    /// timeline so one full cycle lasts that many seconds, phases keeping
    /// their *relative* durations — the campaign engine's `phase_period`
    /// axis, sweeping how often behaviour changes without distorting the
    /// workload's internal phase mix.
    pub fn profiles_for(
        &self,
        machine: &MachineTopology,
        cycle_period: Option<f64>,
    ) -> Vec<(f64, AppProfile)> {
        let scale = cycle_period.map_or(1.0, |p| p / self.cycle_s());
        self.phases
            .iter()
            .map(|p| {
                let mut profile = p.spec.profile_for(machine);
                profile.name = format!("{}:{}", self.name, p.spec.name);
                profile.total_traffic_gb = self.total_traffic_gb;
                (p.duration_s * scale, profile)
            })
            .collect()
    }

    /// Shrink for fast tests: divide the traffic total and every phase's
    /// page counts by `factor` (durations are left alone — override them
    /// through the `phase_period` axis or [`PhasedWorkload::with_period`]).
    pub fn scaled_down(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "factor must be >= 1");
        self.total_traffic_gb /= factor;
        for p in &mut self.phases {
            p.spec = p.spec.clone().scaled_down(factor);
        }
        self
    }

    /// Rescale the timeline so one full cycle lasts `period_s` seconds,
    /// phases keeping their relative durations — the persisted form of
    /// the `phase_period` campaign axis (identical semantics, so a
    /// workload baked with `with_period(p)` and one run at axis point `p`
    /// behave the same).
    pub fn with_period(mut self, period_s: f64) -> Self {
        assert!(period_s > 0.0 && period_s.is_finite(), "period must be positive");
        let scale = period_s / self.cycle_s();
        for p in &mut self.phases {
            p.duration_s *= scale;
        }
        self
    }
}

/// Native duration of the canned variants' phases, seconds.
const CANNED_PERIOD_S: f64 = 30.0;

/// Bandwidth flip on Streamcluster's layout (the `OC→SC`-style demand
/// flip): a sixth of each cycle streams at Ocean-class aggregate
/// bandwidth (42 GB/s per full machine-B worker node — 1.5x one
/// controller, zero latency sensitivity, so pages want to spread out),
/// the rest is the SC point set with its pointer-chase share raised to
/// the top of the modelled range (10 GB/s, `latency_sensitivity` 0.55 —
/// pages want to be worker-local). No single static placement is right
/// for both phases — the scenario the adaptive daemon exists for.
///
/// The bandwidth phase comes first so one-shot tuners converge on it.
pub fn sc_bandwidth_flip() -> PhasedWorkload {
    let mut calm = crate::apps::streamcluster();
    calm.latency_sensitivity = 0.55;
    let mut burst = crate::apps::streamcluster();
    burst.reads_mbps = 42_000.0;
    burst.writes_mbps = 0.0;
    burst.latency_sensitivity = 0.0;
    PhasedWorkload::new(
        "SC.FLIP",
        vec![Phase::new(burst, CANNED_PERIOD_S / 5.0), Phase::new(calm, CANNED_PERIOD_S)],
        2800.0,
    )
    .expect("canned workload is valid")
}

/// Read/write-mix swing on FT.C's layout: phase 0 is the Table-I FT.C mix
/// (~46 % writes), phase 1 the same aggregate bandwidth as almost pure
/// reads. Write amplification at the controllers makes the two phases
/// load the fabric differently at identical demand.
pub fn ftc_rw_swing() -> PhasedWorkload {
    let writey = crate::apps::ft_c();
    let mut ready = crate::apps::ft_c();
    let total = ready.reads_mbps + ready.writes_mbps;
    ready.reads_mbps = total * 0.97;
    ready.writes_mbps = total * 0.03;
    PhasedWorkload::new(
        "FT.SWING",
        vec![Phase::new(writey, CANNED_PERIOD_S), Phase::new(ready, CANNED_PERIOD_S)],
        1280.0,
    )
    .expect("canned workload is valid")
}

/// Footprint swing on Ocean-cp's layout: phase 0 works the per-thread
/// private tiles (Table-I OC, 79 % private), phase 1 shrinks the active
/// footprint onto the shared grids (5 % private) at SP.B-class latency
/// sensitivity. The hot set migrates between segments with different
/// natural placements — private pages are born local, the shared grid's
/// best home depends on the policy.
pub fn oc_footprint_swing() -> PhasedWorkload {
    let tiles = crate::apps::ocean_cp();
    let mut grid = crate::apps::ocean_cp();
    grid.private_frac = 0.05;
    grid.latency_sensitivity = 0.30;
    PhasedWorkload::new(
        "OC.SWING",
        vec![Phase::new(tiles, CANNED_PERIOD_S), Phase::new(grid, CANNED_PERIOD_S)],
        2000.0,
    )
    .expect("canned workload is valid")
}

/// The canned phase-structured variants of the Table-I applications.
pub fn phased_suite() -> Vec<PhasedWorkload> {
    vec![sc_bandwidth_flip(), ftc_rw_swing(), oc_footprint_swing()]
}

/// Look up a canned phased workload by name.
pub fn phased_by_name(name: &str) -> Option<PhasedWorkload> {
    phased_suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn validation_rejects_bad_workloads() {
        assert_eq!(PhasedWorkload::new("x", vec![], 1.0), Err(PhaseError::NoPhases));
        let p = Phase::new(crate::apps::streamcluster(), 0.0);
        assert!(matches!(
            PhasedWorkload::new("x", vec![p.clone()], 1.0),
            Err(PhaseError::BadDuration { phase: 0, .. })
        ));
        let mut nan = p.clone();
        nan.duration_s = f64::NAN;
        assert!(matches!(
            PhasedWorkload::new("x", vec![nan], 1.0),
            Err(PhaseError::BadDuration { .. })
        ));
        let ok = Phase::new(crate::apps::streamcluster(), 5.0);
        assert_eq!(PhasedWorkload::new("x", vec![ok], 0.0), Err(PhaseError::BadTotalTraffic(0.0)));
        // Errors render something readable.
        assert!(PhaseError::NoPhases.to_string().contains("at least one"));
    }

    #[test]
    fn canned_variants_validate_on_every_machine() {
        for m in [machines::machine_a(), machines::machine_b(), machines::machine_tiered()] {
            for w in phased_suite() {
                for (d, profile) in w.profiles_for(&m, None) {
                    assert!(d > 0.0);
                    profile
                        .validate()
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name()));
                    assert_eq!(profile.total_traffic_gb, w.total_traffic_gb);
                }
            }
        }
    }

    #[test]
    fn phased_by_name_roundtrip() {
        for w in phased_suite() {
            assert_eq!(phased_by_name(&w.name).unwrap(), w);
        }
        assert!(phased_by_name("nope").is_none());
    }

    #[test]
    fn cycle_period_rescales_keeping_relative_durations() {
        let w = sc_bandwidth_flip();
        let native: Vec<f64> = w.phases.iter().map(|p| p.duration_s).collect();
        let t = w.profiles_for(&machines::machine_b(), Some(8.0));
        let cycle: f64 = t.iter().map(|(d, _)| d).sum();
        assert!((cycle - 8.0).abs() < 1e-9, "cycle {cycle}");
        // Relative mix preserved: burst stays a sixth of the cycle.
        assert!((t[0].0 / t[1].0 - native[0] / native[1]).abs() < 1e-9);
        // with_period is the persisted form of the same rescale.
        let w = w.with_period(3.0);
        assert!((w.cycle_s() - 3.0).abs() < 1e-9);
        assert!(
            (w.phases[0].duration_s / w.phases[1].duration_s - native[0] / native[1]).abs() < 1e-9
        );
    }

    #[test]
    fn scaled_down_divides_traffic_and_pages_keeps_durations() {
        let w = sc_bandwidth_flip();
        let s = w.clone().scaled_down(8.0);
        assert!((s.total_traffic_gb - w.total_traffic_gb / 8.0).abs() < 1e-9);
        assert_eq!(s.phases[0].spec.shared_pages, w.phases[0].spec.shared_pages / 8);
        assert_eq!(s.phases[0].duration_s, w.phases[0].duration_s);
    }

    #[test]
    fn layout_comes_from_phase_zero() {
        let w = oc_footprint_swing();
        assert_eq!(w.layout_spec().name, "OC");
        assert_eq!(w.layout_spec().shared_pages, crate::apps::ocean_cp().shared_pages);
    }
}
