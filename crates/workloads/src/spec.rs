//! Workload specifications and their translation to engine profiles.

use bwap_topology::MachineTopology;
use numasim::AppProfile;

/// A benchmark's memory-demand characterization, in the paper's Table I
/// terms plus the scalability traits its evaluation exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Short name (the paper's abbreviation: OC, ON, SP.B, SC, FT.C).
    pub name: &'static str,
    /// Read bandwidth demand of one full machine-B worker node (7 threads),
    /// MB/s — Table I "Reads".
    pub reads_mbps: f64,
    /// Write bandwidth demand, MB/s — Table I "Writes".
    pub writes_mbps: f64,
    /// Fraction of accesses to thread-private pages — Table I "Private".
    pub private_frac: f64,
    /// Latency-bound share of the serial critical path (`alpha`):
    /// distinguishes streaming workloads (low) from pointer-chasing ones
    /// (high). Calibrated so machine-B behaviour matches the paper (e.g.
    /// Streamcluster prefers worker-local pages on machine B, Table II).
    pub latency_sensitivity: f64,
    /// Amdahl serial fraction.
    pub serial_frac: f64,
    /// Relative slowdown per additional worker node (cross-node
    /// synchronization); reproduces each benchmark's optimal worker count
    /// in the stand-alone scenario (Fig. 3c/d).
    pub multinode_penalty: f64,
    /// Shared segment size, pages.
    pub shared_pages: u64,
    /// Private pages per thread.
    pub private_pages_per_thread: u64,
    /// Total traffic to process, GB (`INFINITY` = runs until stopped).
    pub total_traffic_gb: f64,
    /// Demand multiplier on machine A. The paper's machines differ in core
    /// micro-architecture (Bulldozer vs Broadwell) and per-node core count;
    /// Table I only characterizes machine B, so the machine-A demand is a
    /// calibration parameter (chosen once, before running any experiment,
    /// to keep each workload's controller-saturation ratio comparable to
    /// what the paper reports for machine A).
    pub machine_a_scale: f64,
    /// Open-loop execution (see `numasim::AppProfile::open_loop`): used
    /// only by the canonical tuner's bandwidth probe.
    pub open_loop: bool,
}

/// Threads per machine-B node used by Table I's characterization runs.
const TABLE1_THREADS: f64 = 7.0;

impl WorkloadSpec {
    /// Per-thread demand on machine B (GB/s, read + write).
    pub fn demand_per_thread_b(&self) -> f64 {
        (self.reads_mbps + self.writes_mbps) / TABLE1_THREADS / 1000.0
    }

    /// Read share of traffic.
    pub fn read_frac(&self) -> f64 {
        let total = self.reads_mbps + self.writes_mbps;
        if total == 0.0 {
            1.0
        } else {
            self.reads_mbps / total
        }
    }

    /// Demand multiplier for a machine.
    pub fn demand_scale(&self, machine: &MachineTopology) -> f64 {
        if machine.name() == "machine-a" {
            self.machine_a_scale
        } else {
            1.0
        }
    }

    /// Build the engine profile for a machine.
    pub fn profile_for(&self, machine: &MachineTopology) -> AppProfile {
        let scale = self.demand_scale(machine);
        let per_thread = self.demand_per_thread_b() * scale;
        let rf = self.read_frac();
        AppProfile {
            name: self.name.to_string(),
            read_gbps_per_thread: per_thread * rf,
            write_gbps_per_thread: per_thread * (1.0 - rf),
            private_frac: self.private_frac,
            latency_sensitivity: self.latency_sensitivity,
            serial_frac: self.serial_frac,
            multinode_penalty: self.multinode_penalty,
            shared_pages: self.shared_pages,
            private_pages_per_thread: self.private_pages_per_thread,
            total_traffic_gb: self.total_traffic_gb * scale,
            open_loop: self.open_loop,
        }
    }

    /// Shrink the workload for fast (debug-build) tests: divide the total
    /// traffic and page counts by `factor`, keeping all ratios intact.
    pub fn scaled_down(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "factor must be >= 1");
        self.total_traffic_gb /= factor;
        self.shared_pages = (self.shared_pages as f64 / factor).max(64.0) as u64;
        self.private_pages_per_thread =
            (self.private_pages_per_thread as f64 / factor).max(16.0) as u64;
        self
    }

    /// Shrink only the total traffic, keeping the working set intact. This
    /// is the quick-mode scaling for capacity-pressure variants: dividing
    /// their page counts (as [`WorkloadSpec::scaled_down`] does) would
    /// remove the very pressure they exist to exert.
    pub fn scaled_down_traffic(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "factor must be >= 1");
        self.total_traffic_gb /= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::apps;
    use bwap_topology::machines;

    #[test]
    fn profiles_validate_on_both_machines() {
        for m in [machines::machine_a(), machines::machine_b()] {
            for w in apps::suite() {
                let p = w.profile_for(&m);
                p.validate().unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name()));
            }
            apps::swaptions().profile_for(&m).validate().unwrap();
            apps::stream_probe().profile_for(&m).validate().unwrap();
        }
    }

    #[test]
    fn demand_matches_table1_on_machine_b() {
        let oc = apps::ocean_cp();
        let m = machines::machine_b();
        let p = oc.profile_for(&m);
        let node_demand_mbps = (p.read_gbps_per_thread + p.write_gbps_per_thread) * 7.0 * 1000.0;
        assert!((node_demand_mbps - (oc.reads_mbps + oc.writes_mbps)).abs() < 1.0);
        let reads = p.read_gbps_per_thread * 7.0 * 1000.0;
        assert!((reads - oc.reads_mbps).abs() < 1.0);
    }

    #[test]
    fn machine_a_scaling_applies() {
        let sc = apps::streamcluster();
        let a = machines::machine_a();
        let b = machines::machine_b();
        let pa = sc.profile_for(&a);
        let pb = sc.profile_for(&b);
        let ra = pa.read_gbps_per_thread / pb.read_gbps_per_thread;
        assert!((ra - sc.machine_a_scale).abs() < 1e-9);
    }

    #[test]
    fn read_frac_bounds() {
        for w in apps::suite() {
            let rf = w.read_frac();
            assert!((0.0..=1.0).contains(&rf), "{}: {rf}", w.name);
        }
    }
}
