//! Synthetic workloads reproducing the paper's benchmark selection.
//!
//! The paper evaluates BWAP on memory-intensive applications from PARSEC,
//! SPLASH and NAS: Ocean cp (OC), Ocean ncp (ON), SP.B, Streamcluster (SC)
//! and FT.C, plus the CPU-bound Swaptions as the co-scheduled high-priority
//! application. We cannot run the original binaries on a simulator, but —
//! as the paper's own methodology shows (Table I) — placement behaviour is
//! governed by each application's *memory demand characterization*:
//! read/write bandwidth, private vs shared access mix, latency sensitivity
//! and scalability. [`WorkloadSpec`] captures exactly these axes; the
//! numbers for the five benchmarks are taken from Table I (measured on
//! machine B with one full worker node) with per-machine demand scaling
//! documented on [`WorkloadSpec::profile_for`].
//!
//! [`apps::stream_probe`] is the paper's "canonical application": an
//! extremely bandwidth-intensive, uniformly-random, read-only traversal of
//! a shared array used by the canonical tuner for profiling.
//!
//! # Examples
//!
//! A spec is plain data; [`WorkloadSpec::profile_for`] translates it into
//! the per-thread demand profile the simulator consumes, and
//! [`WorkloadSpec::scaled_down`] shrinks it for fast tests while keeping
//! every ratio intact:
//!
//! ```
//! use bwap_topology::machines;
//!
//! let sc = bwap_workloads::streamcluster();
//! assert_eq!(sc.name, "SC");
//! // Table I: Streamcluster is almost all shared reads.
//! assert!(sc.private_frac < 0.01 && sc.read_frac() > 0.99);
//!
//! let profile = sc.scaled_down(8.0).profile_for(&machines::machine_b());
//! profile.validate()?;
//!
//! // The whole suite characterizes on both machines.
//! assert_eq!(bwap_workloads::suite().len(), 5);
//! # Ok::<(), numasim::SimError>(())
//! ```

pub mod apps;
pub mod generator;
pub mod spec;
pub mod table1;

pub use apps::{
    by_name, capacity_suite, ft_c, ocean_cp, ocean_cp_xl, ocean_ncp, sp_b, stream_probe,
    streamcluster, streamcluster_xl, suite, swaptions,
};
pub use spec::WorkloadSpec;
pub use table1::{table1_reference, Table1Row};
