//! Synthetic workloads reproducing the paper's benchmark selection.
//!
//! The paper evaluates BWAP on memory-intensive applications from PARSEC,
//! SPLASH and NAS: Ocean cp (OC), Ocean ncp (ON), SP.B, Streamcluster (SC)
//! and FT.C, plus the CPU-bound Swaptions as the co-scheduled high-priority
//! application. We cannot run the original binaries on a simulator, but —
//! as the paper's own methodology shows (Table I) — placement behaviour is
//! governed by each application's *memory demand characterization*:
//! read/write bandwidth, private vs shared access mix, latency sensitivity
//! and scalability. [`WorkloadSpec`] captures exactly these axes; the
//! numbers for the five benchmarks are taken from Table I (measured on
//! machine B with one full worker node) with per-machine demand scaling
//! documented on [`WorkloadSpec::profile_for`].
//!
//! [`apps::stream_probe`] is the paper's "canonical application": an
//! extremely bandwidth-intensive, uniformly-random, read-only traversal of
//! a shared array used by the canonical tuner for profiling.
//!
//! Applications whose access patterns *change over time* are modelled by
//! [`PhasedWorkload`] — an ordered, cycling timeline of demand profiles
//! ([`phased`]), loadable from a JSON phase-trace file ([`trace`]). The
//! canned phase-flipping variants ([`phased::phased_suite`]) drive the
//! adaptive re-tuning scenario (`fig_phases`). See `docs/WORKLOADS.md`
//! for the full workload model.
//!
//! # Examples
//!
//! A spec is plain data; [`WorkloadSpec::profile_for`] translates it into
//! the per-thread demand profile the simulator consumes, and
//! [`WorkloadSpec::scaled_down`] shrinks it for fast tests while keeping
//! every ratio intact:
//!
//! ```
//! use bwap_topology::machines;
//!
//! let sc = bwap_workloads::streamcluster();
//! assert_eq!(sc.name, "SC");
//! // Table I: Streamcluster is almost all shared reads.
//! assert!(sc.private_frac < 0.01 && sc.read_frac() > 0.99);
//!
//! let profile = sc.scaled_down(8.0).profile_for(&machines::machine_b());
//! profile.validate()?;
//!
//! // The whole suite characterizes on both machines.
//! assert_eq!(bwap_workloads::suite().len(), 5);
//! # Ok::<(), numasim::SimError>(())
//! ```
//!
//! A phase-structured workload is a timeline of such specs; the engine
//! swaps demand profiles at each phase boundary:
//!
//! ```
//! use bwap_workloads::{Phase, PhasedWorkload};
//!
//! let flip = PhasedWorkload::new(
//!     "demo-flip",
//!     vec![
//!         Phase::new(bwap_workloads::ocean_cp(), 10.0),
//!         Phase::new(bwap_workloads::streamcluster(), 10.0),
//!     ],
//!     500.0,
//! )?;
//! let timeline = flip.profiles_for(&bwap_topology::machines::machine_b(), None);
//! assert_eq!(timeline.len(), 2);
//! # Ok::<(), bwap_workloads::PhaseError>(())
//! ```

pub mod apps;
pub mod arrivals;
pub mod generator;
pub mod json;
pub mod phased;
pub mod spec;
pub mod table1;
pub mod trace;

pub use apps::{
    by_name, capacity_suite, ft_c, ocean_cp, ocean_cp_xl, ocean_ncp, sp_b, stream_probe,
    streamcluster, streamcluster_xl, suite, swaptions,
};
pub use phased::{
    ftc_rw_swing, oc_footprint_swing, phased_by_name, phased_suite, sc_bandwidth_flip, Phase,
    PhaseError, PhasedWorkload,
};
pub use spec::WorkloadSpec;
pub use table1::{table1_reference, Table1Row};
pub use trace::{load_phase_trace, parse_phase_trace, TraceError};
