//! Randomized workload generation for property tests and robustness
//! sweeps.

use crate::spec::WorkloadSpec;
use rand::Rng;

/// Bounds for random workload generation.
#[derive(Debug, Clone)]
pub struct GeneratorBounds {
    /// Per-node demand range, MB/s (reads + writes).
    pub demand_mbps: (f64, f64),
    /// Write share range.
    pub write_frac: (f64, f64),
    /// Private traffic share range.
    pub private_frac: (f64, f64),
    /// Latency sensitivity range.
    pub latency_sensitivity: (f64, f64),
    /// Shared segment pages range.
    pub shared_pages: (u64, u64),
}

impl Default for GeneratorBounds {
    fn default() -> Self {
        GeneratorBounds {
            demand_mbps: (2_000.0, 30_000.0),
            write_frac: (0.0, 0.45),
            private_frac: (0.0, 0.95),
            latency_sensitivity: (0.0, 0.6),
            shared_pages: (4_096, 262_144),
        }
    }
}

/// Draw a random (but always valid) workload from the given bounds.
pub fn random_workload<R: Rng>(rng: &mut R, bounds: &GeneratorBounds) -> WorkloadSpec {
    let demand = rng.gen_range(bounds.demand_mbps.0..=bounds.demand_mbps.1);
    let wf = rng.gen_range(bounds.write_frac.0..=bounds.write_frac.1);
    WorkloadSpec {
        name: "random",
        reads_mbps: demand * (1.0 - wf),
        writes_mbps: demand * wf,
        private_frac: rng.gen_range(bounds.private_frac.0..=bounds.private_frac.1),
        latency_sensitivity: rng
            .gen_range(bounds.latency_sensitivity.0..=bounds.latency_sensitivity.1),
        serial_frac: rng.gen_range(0.0..0.1),
        multinode_penalty: rng.gen_range(0.0..0.3),
        shared_pages: rng.gen_range(bounds.shared_pages.0..=bounds.shared_pages.1),
        private_pages_per_thread: rng.gen_range(64..=8_192),
        total_traffic_gb: rng.gen_range(20.0..200.0),
        machine_a_scale: rng.gen_range(0.3..1.5),
        open_loop: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_workloads_always_validate() {
        let mut rng = StdRng::seed_from_u64(42);
        let bounds = GeneratorBounds::default();
        for m in [machines::machine_a(), machines::machine_b()] {
            for _ in 0..200 {
                let w = random_workload(&mut rng, &bounds);
                w.profile_for(&m).validate().expect("generated workload must be valid");
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let bounds = GeneratorBounds::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(random_workload(&mut a, &bounds), random_workload(&mut b, &bounds));
    }
}
