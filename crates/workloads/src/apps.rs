//! The paper's benchmark suite as workload specifications.
//!
//! Bandwidth/mix numbers come straight from Table I (NumaMMA
//! characterization on machine B, one full worker node). Latency
//! sensitivity, scalability and machine-A demand scale are calibration
//! parameters fixed once (see `DESIGN.md` §3) — they encode, respectively:
//! which workloads the paper observed to be latency- vs bandwidth-bound
//! (Table II's DWP values), each benchmark's optimal worker count
//! (Fig. 3c/d labels), and machine A's lower per-core demand.

use crate::spec::WorkloadSpec;

/// Ocean, contiguous partitions (SPLASH-2). Table I: 17576/6492 MB/s,
/// 79.3 % private.
pub fn ocean_cp() -> WorkloadSpec {
    WorkloadSpec {
        name: "OC",
        reads_mbps: 17576.0,
        writes_mbps: 6492.0,
        private_frac: 0.793,
        latency_sensitivity: 0.15,
        serial_frac: 0.002,
        multinode_penalty: 0.01,
        shared_pages: 65_536,             // 256 MiB shared grids
        private_pages_per_thread: 24_576, // 96 MiB per-thread tiles
        total_traffic_gb: 1440.0,
        machine_a_scale: 0.55,
        open_loop: false,
    }
}

/// Ocean, non-contiguous partitions (SPLASH-2). Table I: 16053/5578 MB/s,
/// 86.7 % private.
pub fn ocean_ncp() -> WorkloadSpec {
    WorkloadSpec {
        name: "ON",
        reads_mbps: 16053.0,
        writes_mbps: 5578.0,
        private_frac: 0.867,
        latency_sensitivity: 0.15,
        serial_frac: 0.002,
        multinode_penalty: 0.01,
        shared_pages: 65_536,
        private_pages_per_thread: 24_576,
        total_traffic_gb: 1280.0,
        machine_a_scale: 0.55,
        open_loop: false,
    }
}

/// NAS SP, class B. Table I: 11962/5352 MB/s, 19.9 % private. Scales
/// poorly across nodes (its stand-alone optimum is a single worker node,
/// Fig. 3c/d).
pub fn sp_b() -> WorkloadSpec {
    WorkloadSpec {
        name: "SP.B",
        reads_mbps: 11962.0,
        writes_mbps: 5352.0,
        private_frac: 0.199,
        latency_sensitivity: 0.30,
        serial_frac: 0.05,
        multinode_penalty: 0.70,
        shared_pages: 98_304, // 384 MiB
        private_pages_per_thread: 4_096,
        total_traffic_gb: 1000.0,
        machine_a_scale: 0.60,
        open_loop: false,
    }
}

/// PARSEC Streamcluster. Table I: 10055/70 MB/s, 99.8 % shared — the
/// paper's flagship: almost purely shared, read-dominated, and latency
/// sensitive (its machine-B DWP optimum is 100 %, Table II).
pub fn streamcluster() -> WorkloadSpec {
    WorkloadSpec {
        name: "SC",
        reads_mbps: 10055.0,
        writes_mbps: 70.0,
        private_frac: 0.002,
        latency_sensitivity: 0.45,
        serial_frac: 0.005,
        multinode_penalty: 0.08,
        shared_pages: 163_840, // 640 MiB point set
        private_pages_per_thread: 512,
        total_traffic_gb: 640.0,
        machine_a_scale: 1.40,
        open_loop: false,
    }
}

/// NAS FT, class C. Table I: 5585/4715 MB/s, 95 % private,
/// write-intensive.
pub fn ft_c() -> WorkloadSpec {
    WorkloadSpec {
        name: "FT.C",
        reads_mbps: 5585.0,
        writes_mbps: 4715.0,
        private_frac: 0.95,
        latency_sensitivity: 0.20,
        serial_frac: 0.002,
        multinode_penalty: 0.01,
        shared_pages: 32_768,
        private_pages_per_thread: 16_384,
        total_traffic_gb: 640.0,
        machine_a_scale: 1.00,
        open_loop: false,
    }
}

/// PARSEC Swaptions: the CPU-bound, *non* memory-intensive application the
/// paper co-schedules as the high-priority workload A. Runs until stopped.
pub fn swaptions() -> WorkloadSpec {
    WorkloadSpec {
        name: "SW",
        reads_mbps: 1200.0,
        writes_mbps: 200.0,
        private_frac: 0.98,
        latency_sensitivity: 0.05,
        serial_frac: 0.01,
        multinode_penalty: 0.0,
        shared_pages: 8_192,
        private_pages_per_thread: 2_048,
        total_traffic_gb: f64::INFINITY,
        machine_a_scale: 0.60,
        open_loop: false,
    }
}

/// Capacity-pressure variant of Streamcluster: same demand and access mix,
/// but a 6 GiB shared point set that overflows `machine_tiered`'s whole
/// 4 GiB fast tier — at least a third of the shared pages *must* live on
/// the CPU-less expander nodes under any placement.
pub fn streamcluster_xl() -> WorkloadSpec {
    WorkloadSpec { name: "SC.XL", shared_pages: 1_572_864, ..streamcluster() }
}

/// Capacity-pressure variant of Ocean (contiguous): per-thread tiles grown
/// to 384 MiB, so a full 8-thread worker node of `machine_tiered` needs
/// 3 GiB of private pages against a 2 GiB fast node — the private working
/// set spills to the slow tier too.
pub fn ocean_cp_xl() -> WorkloadSpec {
    WorkloadSpec { name: "OC.XL", private_pages_per_thread: 98_304, ..ocean_cp() }
}

/// The capacity-pressure variants: workloads whose working sets overflow
/// the fast tier of [`bwap_topology::machines::machine_tiered`].
pub fn capacity_suite() -> Vec<WorkloadSpec> {
    vec![streamcluster_xl(), ocean_cp_xl()]
}

/// The canonical profiling workload (§III-A3): as many threads as the
/// worker nodes offer, each performing a uniformly-random, read-only
/// traversal of a large shared array, demanding far more bandwidth than
/// any node supplies. Used by the canonical tuner with uniform-all
/// interleaving to estimate `bw(src -> dst)` from per-node throughput
/// counters.
pub fn stream_probe() -> WorkloadSpec {
    WorkloadSpec {
        name: "stream-probe",
        reads_mbps: 70_000.0, // 10 GB/s per thread: saturates everything
        writes_mbps: 0.0,
        private_frac: 0.0,
        latency_sensitivity: 0.0,
        serial_frac: 0.0,
        multinode_penalty: 0.0,
        shared_pages: 262_144, // 1 GiB
        private_pages_per_thread: 16,
        total_traffic_gb: f64::INFINITY,
        machine_a_scale: 1.0,
        open_loop: true,
    }
}

/// The five benchmarks of the paper's evaluation, in its plotting order
/// (SC, OC, ON, SP.B, FT.C — Fig. 2/3).
pub fn suite() -> Vec<WorkloadSpec> {
    vec![streamcluster(), ocean_cp(), ocean_ncp(), sp_b(), ft_c()]
}

/// Look up a workload by its paper abbreviation.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    match name {
        "OC" => Some(ocean_cp()),
        "ON" => Some(ocean_ncp()),
        "SP.B" => Some(sp_b()),
        "SC" => Some(streamcluster()),
        "FT.C" => Some(ft_c()),
        "SW" => Some(swaptions()),
        "SC.XL" => Some(streamcluster_xl()),
        "OC.XL" => Some(ocean_cp_xl()),
        "stream-probe" => Some(stream_probe()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_selection() {
        let names: Vec<&str> = suite().iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["SC", "OC", "ON", "SP.B", "FT.C"]);
    }

    #[test]
    fn table1_values_transcribed_correctly() {
        // Spot-check against the paper's Table I.
        assert_eq!(ocean_cp().reads_mbps, 17576.0);
        assert_eq!(ocean_cp().writes_mbps, 6492.0);
        assert_eq!(ocean_ncp().private_frac, 0.867);
        assert_eq!(sp_b().reads_mbps, 11962.0);
        assert_eq!(streamcluster().writes_mbps, 70.0);
        assert!((streamcluster().private_frac - 0.002).abs() < 1e-12);
        assert_eq!(ft_c().private_frac, 0.95);
    }

    #[test]
    fn by_name_roundtrip() {
        for w in suite().into_iter().chain(capacity_suite()) {
            assert_eq!(by_name(w.name).unwrap(), w);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn capacity_variants_keep_demand_but_grow_the_working_set() {
        let sc = streamcluster();
        let xl = streamcluster_xl();
        assert_eq!(xl.reads_mbps, sc.reads_mbps);
        assert_eq!(xl.private_frac, sc.private_frac);
        assert!(xl.shared_pages > 4 * sc.shared_pages);
        let oc = ocean_cp();
        let oxl = ocean_cp_xl();
        assert_eq!(oxl.shared_pages, oc.shared_pages);
        assert!(oxl.private_pages_per_thread == 4 * oc.private_pages_per_thread);
        // Quick-mode scaling for these variants shrinks traffic only.
        let quick = streamcluster_xl().scaled_down_traffic(8.0);
        assert_eq!(quick.shared_pages, xl.shared_pages);
        assert!((quick.total_traffic_gb - xl.total_traffic_gb / 8.0).abs() < 1e-9);
    }

    #[test]
    fn memory_intensive_apps_saturate_a_machine_b_node_when_spanning_two() {
        // The motivation scenario: two worker nodes first-touching onto one
        // master node must oversubscribe its 28 GB/s controller for the
        // bandwidth-hungry apps.
        for w in [ocean_cp(), ocean_ncp(), sp_b()] {
            let node_demand = w.demand_per_thread_b() * 7.0;
            assert!(
                2.0 * node_demand > 28.0 * 0.9,
                "{} per-node demand {node_demand} too low",
                w.name
            );
        }
    }

    #[test]
    fn swaptions_is_not_memory_intensive() {
        let sw = swaptions();
        assert!(sw.demand_per_thread_b() * 7.0 < 2.0);
        assert!(sw.total_traffic_gb.is_infinite());
    }

    #[test]
    fn probe_demand_swamps_any_controller() {
        let p = stream_probe();
        assert!(p.demand_per_thread_b() * 7.0 > 2.0 * 28.0);
        assert_eq!(p.private_frac, 0.0);
    }
}
