//! The paper's Table I reference values, for paper-vs-measured reporting.

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark abbreviation.
    pub name: &'static str,
    /// Reads, MB/s.
    pub reads_mbps: f64,
    /// Writes, MB/s.
    pub writes_mbps: f64,
    /// Private accesses, percent.
    pub private_pct: f64,
    /// Shared accesses, percent.
    pub shared_pct: f64,
}

/// Table I as printed in the paper (machine B, one full worker node).
pub fn table1_reference() -> Vec<Table1Row> {
    vec![
        Table1Row {
            name: "OC",
            reads_mbps: 17576.0,
            writes_mbps: 6492.0,
            private_pct: 79.3,
            shared_pct: 20.7,
        },
        Table1Row {
            name: "ON",
            reads_mbps: 16053.0,
            writes_mbps: 5578.0,
            private_pct: 86.7,
            shared_pct: 13.3,
        },
        Table1Row {
            name: "SP.B",
            reads_mbps: 11962.0,
            writes_mbps: 5352.0,
            private_pct: 19.9,
            shared_pct: 80.1,
        },
        Table1Row {
            name: "SC",
            reads_mbps: 10055.0,
            writes_mbps: 70.0,
            private_pct: 0.2,
            shared_pct: 99.8,
        },
        Table1Row {
            name: "FT.C",
            reads_mbps: 5585.0,
            writes_mbps: 4715.0,
            private_pct: 95.0,
            shared_pct: 5.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn reference_consistent_with_specs() {
        for row in table1_reference() {
            let spec = apps::by_name(row.name).unwrap();
            assert_eq!(spec.reads_mbps, row.reads_mbps, "{}", row.name);
            assert_eq!(spec.writes_mbps, row.writes_mbps, "{}", row.name);
            assert!((spec.private_frac * 100.0 - row.private_pct).abs() < 0.05, "{}", row.name);
        }
    }

    #[test]
    fn percents_sum_to_hundred() {
        for row in table1_reference() {
            assert!((row.private_pct + row.shared_pct - 100.0).abs() < 1e-9);
        }
    }
}
