//! Cost evaluators for the weight search.

use bwap::WeightDistribution;
use bwap_topology::{MachineTopology, NodeSet};
use bwap_workloads::WorkloadSpec;
use numasim::{MemPolicy, SimConfig, Simulator};

/// Anything that maps a weight distribution to a cost (execution time).
pub trait Evaluator {
    /// Cost of one candidate; lower is better.
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64;
}

/// Evaluate by running the workload in a fresh simulator with the pages
/// placed by the kernel weighted-interleave policy.
pub struct SimEvaluator {
    machine: MachineTopology,
    spec: WorkloadSpec,
    workers: NodeSet,
    max_sim_s: f64,
}

impl SimEvaluator {
    /// Stand-alone evaluation of `spec` on `workers`.
    pub fn new(machine: MachineTopology, spec: WorkloadSpec, workers: NodeSet) -> Self {
        SimEvaluator { machine, spec, workers, max_sim_s: 3600.0 }
    }
}

impl Evaluator for SimEvaluator {
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64 {
        let mut sim = Simulator::new(self.machine.clone(), SimConfig::default());
        let pid = sim
            .spawn(
                self.spec.profile_for(&self.machine),
                self.workers,
                None,
                MemPolicy::WeightedInterleave(weights.to_vec()),
            )
            .expect("valid spawn");
        sim.run_until_finished(pid, self.max_sim_s).expect("run completes")
    }
}

/// Evaluate with a closure (unit tests, synthetic landscapes).
pub struct FnEvaluator<F: FnMut(&WeightDistribution) -> f64>(pub F);

impl<F: FnMut(&WeightDistribution) -> f64> Evaluator for FnEvaluator<F> {
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64 {
        (self.0)(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn sim_evaluator_prefers_spreading_for_saturating_workload() {
        let m = machines::machine_b();
        let spec = bwap_workloads::ocean_cp().scaled_down(16.0);
        let workers = m.best_worker_set(2);
        let mut ev = SimEvaluator::new(m, spec, workers);
        let centralized = WeightDistribution::from_raw(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let spread = WeightDistribution::uniform(4);
        assert!(ev.evaluate(&spread) < ev.evaluate(&centralized));
    }
}
