//! Cost evaluators for the weight search.

use bwap::WeightDistribution;
use bwap_topology::{MachineTopology, NodeSet};
use bwap_workloads::WorkloadSpec;
use numasim::{MemPolicy, SimConfig, Simulator};

/// Anything that maps a weight distribution to a cost (execution time).
pub trait Evaluator {
    /// Cost of one candidate; lower is better.
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64;

    /// Costs of a batch of candidates, in order. The default runs them
    /// sequentially; evaluators whose runs are independent (fresh
    /// simulator per candidate) override this to fan the batch out across
    /// the campaign engine's shared parallel executor.
    fn evaluate_batch(&mut self, candidates: &[WeightDistribution]) -> Vec<f64> {
        candidates.iter().map(|w| self.evaluate(w)).collect()
    }
}

/// Evaluate by running the workload in a fresh simulator with the pages
/// placed by the kernel weighted-interleave policy.
pub struct SimEvaluator {
    machine: MachineTopology,
    spec: WorkloadSpec,
    workers: NodeSet,
    max_sim_s: f64,
}

impl SimEvaluator {
    /// Stand-alone evaluation of `spec` on `workers`.
    pub fn new(machine: MachineTopology, spec: WorkloadSpec, workers: NodeSet) -> Self {
        SimEvaluator { machine, spec, workers, max_sim_s: 3600.0 }
    }
}

/// One candidate evaluation: fresh simulator, kernel weighted interleave.
fn run_candidate(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    max_sim_s: f64,
    weights: &WeightDistribution,
) -> f64 {
    let mut sim = Simulator::new(machine.clone(), SimConfig::default());
    let pid = sim
        .spawn(
            spec.profile_for(machine),
            workers,
            None,
            MemPolicy::WeightedInterleave(weights.to_vec()),
        )
        .expect("valid spawn");
    sim.run_until_finished(pid, max_sim_s).expect("run completes")
}

impl Evaluator for SimEvaluator {
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64 {
        run_candidate(&self.machine, &self.spec, self.workers, self.max_sim_s, weights)
    }

    /// Candidate runs are independent (each builds its own simulator), so
    /// the batch fans out over [`bwap_runtime::campaign::run_parallel`] —
    /// the same sharded executor that runs campaign cells.
    fn evaluate_batch(&mut self, candidates: &[WeightDistribution]) -> Vec<f64> {
        let jobs: Vec<_> = candidates
            .iter()
            .map(|w| {
                let machine = &self.machine;
                let spec = &self.spec;
                let workers = self.workers;
                let max_sim_s = self.max_sim_s;
                move || run_candidate(machine, spec, workers, max_sim_s, w)
            })
            .collect();
        bwap_runtime::campaign::run_parallel(jobs)
    }
}

/// Evaluate with a closure (unit tests, synthetic landscapes).
pub struct FnEvaluator<F: FnMut(&WeightDistribution) -> f64>(pub F);

impl<F: FnMut(&WeightDistribution) -> f64> Evaluator for FnEvaluator<F> {
    fn evaluate(&mut self, weights: &WeightDistribution) -> f64 {
        (self.0)(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn sim_evaluator_prefers_spreading_for_saturating_workload() {
        let m = machines::machine_b();
        let spec = bwap_workloads::ocean_cp().scaled_down(16.0);
        let workers = m.best_worker_set(2);
        let mut ev = SimEvaluator::new(m, spec, workers);
        let centralized = WeightDistribution::from_raw(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let spread = WeightDistribution::uniform(4);
        assert!(ev.evaluate(&spread) < ev.evaluate(&centralized));
    }

    #[test]
    fn batch_evaluation_matches_sequential() {
        let m = machines::machine_b();
        let spec = bwap_workloads::streamcluster().scaled_down(32.0);
        let workers = m.best_worker_set(1);
        let mut ev = SimEvaluator::new(m, spec, workers);
        let candidates = vec![
            WeightDistribution::uniform(4),
            WeightDistribution::from_raw(vec![0.7, 0.1, 0.1, 0.1]).unwrap(),
            WeightDistribution::from_raw(vec![0.25, 0.25, 0.4, 0.1]).unwrap(),
        ];
        let parallel = ev.evaluate_batch(&candidates);
        let sequential: Vec<f64> = candidates.iter().map(|w| ev.evaluate(w)).collect();
        assert_eq!(parallel, sequential);
    }
}
