//! Offline N-dimensional hill-climbing search over weight distributions —
//! the oracle the paper uses to motivate BWAP (§II, Fig. 1b).
//!
//! "The search used the hill climbing technique to explore the
//! 8-dimensional space of possible solutions. The starting point was
//! uniform-workers. Each search covered approximately 180 iterations
//! [...]. The values discussed are averages over a selection of the
//! top-10 best performing distributions."
//!
//! Each candidate weight distribution is evaluated with a *fresh run* of
//! the application placed by the kernel weighted-interleave policy (no
//! migration noise). On the real machine this took >15 hours per
//! application; on the simulator it takes seconds — which is the point of
//! having a simulator.

pub mod climb;
pub mod evaluator;

pub use climb::{hill_climb, HillClimbConfig, SearchOutcome};
pub use evaluator::{Evaluator, FnEvaluator, SimEvaluator};
