//! Offline N-dimensional hill-climbing search over weight distributions —
//! the oracle the paper uses to motivate BWAP (§II, Fig. 1b).
//!
//! "The search used the hill climbing technique to explore the
//! 8-dimensional space of possible solutions. The starting point was
//! uniform-workers. Each search covered approximately 180 iterations
//! [...]. The values discussed are averages over a selection of the
//! top-10 best performing distributions."
//!
//! Each candidate weight distribution is evaluated with a *fresh run* of
//! the application placed by the kernel weighted-interleave policy (no
//! migration noise). On the real machine this took >15 hours per
//! application; on the simulator it takes seconds — which is the point of
//! having a simulator. Candidate runs are independent, so
//! [`SimEvaluator`] fans each proposal batch out across the campaign
//! engine's sharded executor (`bwap-runtime::campaign`): set
//! [`HillClimbConfig::batch`] > 1 and the search evaluates that many
//! proposals concurrently per round.
//!
//! # Examples
//!
//! The search is generic over the cost landscape; a closure-backed
//! evaluator makes it easy to test against a known optimum:
//!
//! ```
//! use bwap::WeightDistribution;
//! use bwap_search::{hill_climb, FnEvaluator, HillClimbConfig};
//!
//! // Quadratic bowl with its minimum at the target distribution.
//! let target = [0.4, 0.3, 0.2, 0.1];
//! let mut evaluator = FnEvaluator(|w: &WeightDistribution| {
//!     w.as_slice().iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum()
//! });
//!
//! let cfg = HillClimbConfig { iterations: 300, step: 0.05, ..HillClimbConfig::default() };
//! let outcome = hill_climb(&mut evaluator, WeightDistribution::uniform(4), &cfg);
//!
//! assert!(outcome.best_time < 0.01, "found the bowl's floor");
//! assert!(outcome.top_k_mean_time >= outcome.best_time);
//! ```

pub mod climb;
pub mod evaluator;

pub use climb::{hill_climb, HillClimbConfig, SearchOutcome};
pub use evaluator::{Evaluator, FnEvaluator, SimEvaluator};
