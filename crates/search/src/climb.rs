//! The hill-climbing loop over the weight simplex.

use crate::evaluator::Evaluator;
use bwap::WeightDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search parameters (paper defaults: ~180 iterations, top-10 averaging).
#[derive(Debug, Clone)]
pub struct HillClimbConfig {
    /// Total candidate evaluations (including the starting point).
    pub iterations: usize,
    /// Largest mass moved between two nodes per perturbation; each
    /// proposal draws a step uniformly from `(0, step]`, mixing coarse
    /// exploration with fine refinement.
    pub step: f64,
    /// How many best candidates the summary averages over.
    pub top_k: usize,
    /// RNG seed (the search is otherwise deterministic).
    pub seed: u64,
    /// Candidates proposed (and evaluated through
    /// [`Evaluator::evaluate_batch`]) per round. `1` reproduces the
    /// paper's strictly sequential climb; larger batches evaluate
    /// proposals concurrently on the campaign engine's executor and
    /// accept the best improving one, trading some sequential greediness
    /// for wall-clock speed. Deterministic for a fixed seed either way.
    pub batch: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig { iterations: 180, step: 0.20, top_k: 10, seed: 0x1b_5eed, batch: 1 }
    }
}

impl HillClimbConfig {
    /// The default search at a given parallel batch width.
    pub fn batched(batch: usize) -> Self {
        HillClimbConfig { batch, ..HillClimbConfig::default() }
    }
}

/// Result of one search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best distribution found.
    pub best_weights: WeightDistribution,
    /// Its cost (execution time).
    pub best_time: f64,
    /// Mean cost of the `top_k` best distinct candidates — the number the
    /// paper normalizes Fig. 1b against.
    pub top_k_mean_time: f64,
    /// Every `(candidate, cost)` evaluated, in order.
    pub evaluations: Vec<(WeightDistribution, f64)>,
}

/// Move `step` of probability mass from node `from` to node `to`,
/// clamping at zero and renormalizing. Returns `None` for a no-op.
fn perturb(
    weights: &WeightDistribution,
    from: usize,
    to: usize,
    step: f64,
) -> Option<WeightDistribution> {
    if from == to {
        return None;
    }
    let mut w = weights.to_vec();
    let moved = step.min(w[from]);
    if moved <= 1e-12 {
        return None;
    }
    w[from] -= moved;
    w[to] += moved;
    WeightDistribution::from_raw(w).ok()
}

/// Move `step/2` from each of two sources to one target. Single-pair moves
/// cannot descend the plateaus the weighted max-min landscape exhibits:
/// when several nodes bind equally (the paper's Eq. 1 water-filling
/// structure), *all* of their weights must drop together before execution
/// time improves, so the neighborhood needs correlated moves.
fn perturb2(
    weights: &WeightDistribution,
    from_a: usize,
    from_b: usize,
    to: usize,
    step: f64,
) -> Option<WeightDistribution> {
    if from_a == from_b || from_a == to || from_b == to {
        return None;
    }
    let mut w = weights.to_vec();
    let m_a = (step / 2.0).min(w[from_a]);
    let m_b = (step / 2.0).min(w[from_b]);
    if m_a + m_b <= 1e-12 {
        return None;
    }
    w[from_a] -= m_a;
    w[from_b] -= m_b;
    w[to] += m_a + m_b;
    WeightDistribution::from_raw(w).ok()
}

/// Greedy hill climbing from `start`: each round proposes `cfg.batch`
/// random mass moves, evaluates them (concurrently, if the evaluator
/// parallelizes batches) and moves to the best improving candidate.
/// With `batch = 1` this is the paper's strictly sequential climb.
pub fn hill_climb(
    evaluator: &mut dyn Evaluator,
    start: WeightDistribution,
    cfg: &HillClimbConfig,
) -> SearchOutcome {
    assert!(cfg.iterations >= 1, "need at least the starting evaluation");
    assert!(cfg.top_k >= 1, "top_k must be positive");
    assert!(cfg.batch >= 1, "batch must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = start.len();
    let mut evaluations = Vec::with_capacity(cfg.iterations);
    let mut current = start;
    let mut current_cost = evaluator.evaluate(&current);
    evaluations.push((current.clone(), current_cost));
    while evaluations.len() < cfg.iterations {
        let want = cfg.batch.min(cfg.iterations - evaluations.len());
        let mut proposals = Vec::with_capacity(want);
        let mut stalls = 0usize; // draws without a viable candidate
        while proposals.len() < want {
            let step = rng.gen_range(0.0..cfg.step).max(1e-3);
            let to = rng.gen_range(0..n);
            let candidate = if rng.gen_bool(0.5) {
                perturb(&current, rng.gen_range(0..n), to, step)
            } else {
                perturb2(&current, rng.gen_range(0..n), rng.gen_range(0..n), to, step)
            };
            match candidate {
                Some(c) => {
                    stalls = 0;
                    proposals.push(c);
                }
                None => {
                    stalls += 1;
                    assert!(stalls < 100_000, "search cannot generate proposals");
                }
            }
        }
        let costs = evaluator.evaluate_batch(&proposals);
        assert_eq!(costs.len(), proposals.len(), "evaluator must cost every candidate");
        for (candidate, cost) in proposals.into_iter().zip(costs) {
            evaluations.push((candidate.clone(), cost));
            if cost < current_cost {
                current = candidate;
                current_cost = cost;
            }
        }
    }
    let mut sorted: Vec<&(WeightDistribution, f64)> = evaluations.iter().collect();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    let k = cfg.top_k.min(sorted.len());
    let top_k_mean_time = sorted[..k].iter().map(|e| e.1).sum::<f64>() / k as f64;
    SearchOutcome {
        best_weights: sorted[0].0.clone(),
        best_time: sorted[0].1,
        top_k_mean_time,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;

    /// Quadratic bowl with minimum at the given target distribution.
    fn bowl(target: Vec<f64>) -> impl FnMut(&WeightDistribution) -> f64 {
        move |w: &WeightDistribution| {
            w.as_slice().iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
        }
    }

    #[test]
    fn converges_toward_known_optimum() {
        let target = vec![0.4, 0.3, 0.2, 0.1];
        let mut ev = FnEvaluator(bowl(target.clone()));
        let start = WeightDistribution::uniform(4);
        let cfg = HillClimbConfig { iterations: 400, step: 0.05, top_k: 10, seed: 7, batch: 1 };
        let out = hill_climb(&mut ev, start, &cfg);
        for (i, &t) in target.iter().enumerate() {
            let got = out.best_weights.as_slice()[i];
            assert!((got - t).abs() < 0.08, "node {i}: {got} vs {t}");
        }
        assert!(out.best_time < 0.01);
        assert_eq!(out.evaluations.len(), 400);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut ev = FnEvaluator(bowl(vec![0.7, 0.3]));
            hill_climb(
                &mut ev,
                WeightDistribution::uniform(2),
                &HillClimbConfig { iterations: 50, step: 0.1, top_k: 5, seed: 42, batch: 1 },
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_weights, b.best_weights);
        assert_eq!(a.top_k_mean_time, b.top_k_mean_time);
    }

    #[test]
    fn top_k_mean_at_least_best() {
        let mut ev = FnEvaluator(bowl(vec![0.5, 0.5]));
        let out = hill_climb(
            &mut ev,
            WeightDistribution::from_raw(vec![0.9, 0.1]).unwrap(),
            &HillClimbConfig { iterations: 60, step: 0.1, top_k: 10, seed: 1, batch: 1 },
        );
        assert!(out.top_k_mean_time >= out.best_time);
    }

    #[test]
    fn never_produces_invalid_weights() {
        let mut ev = FnEvaluator(|_: &WeightDistribution| 1.0); // flat: nothing accepted
        let out = hill_climb(
            &mut ev,
            WeightDistribution::from_raw(vec![1.0, 0.0, 0.0]).unwrap(),
            &HillClimbConfig { iterations: 100, step: 0.5, top_k: 3, seed: 3, batch: 1 },
        );
        for (w, _) in &out.evaluations {
            assert!(w.is_normalized(), "{w}");
        }
    }

    #[test]
    fn batched_search_converges_and_respects_iteration_budget() {
        let target = vec![0.4, 0.3, 0.2, 0.1];
        let mut ev = FnEvaluator(bowl(target.clone()));
        let cfg = HillClimbConfig { iterations: 400, step: 0.05, top_k: 10, seed: 7, batch: 8 };
        let out = hill_climb(&mut ev, WeightDistribution::uniform(4), &cfg);
        assert_eq!(out.evaluations.len(), 400);
        for (i, &t) in target.iter().enumerate() {
            let got = out.best_weights.as_slice()[i];
            assert!((got - t).abs() < 0.08, "node {i}: {got} vs {t}");
        }
    }

    #[test]
    fn batched_search_is_deterministic() {
        let run = || {
            let mut ev = FnEvaluator(bowl(vec![0.7, 0.3]));
            hill_climb(&mut ev, WeightDistribution::uniform(2), &HillClimbConfig::batched(4))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_weights, b.best_weights);
        assert_eq!(a.top_k_mean_time, b.top_k_mean_time);
    }

    #[test]
    fn batch_of_one_matches_legacy_sequential_trajectory() {
        // `batch: 1` must reproduce the exact pre-batching proposal
        // stream: same RNG draw order, same accepted moves.
        let mut ev = FnEvaluator(bowl(vec![0.5, 0.3, 0.2]));
        let cfg = HillClimbConfig { iterations: 80, step: 0.1, top_k: 5, seed: 9, batch: 1 };
        let a = hill_climb(&mut ev, WeightDistribution::uniform(3), &cfg);
        let mut ev2 = FnEvaluator(bowl(vec![0.5, 0.3, 0.2]));
        let b = hill_climb(&mut ev2, WeightDistribution::uniform(3), &cfg);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn perturb_edge_cases() {
        let w = WeightDistribution::from_raw(vec![1.0, 0.0]).unwrap();
        assert!(perturb(&w, 0, 0, 0.1).is_none()); // same node
        assert!(perturb(&w, 1, 0, 0.1).is_none()); // nothing to move
        let moved = perturb(&w, 0, 1, 0.25).unwrap();
        assert_eq!(moved.as_slice(), &[0.75, 0.25]);
    }
}
