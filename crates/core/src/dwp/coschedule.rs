//! The co-scheduled DWP variant (paper §III-B3).
//!
//! Setting: a high-priority, low-memory-intensity application *A* owns some
//! nodes; a best-effort memory-intensive application *B* runs on the
//! remaining nodes and wants to place pages on A's nodes for their spare
//! bandwidth — without degrading A. An external monitor samples both
//! applications' stall rates and drives a two-stage search over B's DWP:
//!
//! * **Stage 1**: raise B's DWP while *A*'s stall rate keeps decreasing
//!   (B's pages leaving A's nodes relieve A); when A's stall rate
//!   stabilizes, the current DWP is a lower bound protecting A.
//! * **Stage 2**: continue the ordinary hill climb guided by *B*'s stall
//!   rate from that lower bound upward.

use crate::dwp::{apply_dwp, DwpTunerConfig, TunerAction};
use crate::error::BwapError;
use crate::sampler::TrimmedSampler;
use crate::weights::WeightDistribution;
use bwap_topology::NodeSet;

/// Which stage the search is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Protecting A: climb while A's stalls drop.
    ProtectHighPriority,
    /// Optimizing B: climb while B's stalls drop.
    OptimizeBestEffort,
    /// Search complete.
    Done,
}

/// Two-stage co-scheduled tuner. Drivers feed one `(stall_A, stall_B)`
/// pair per sampling interval and execute the returned actions on B's
/// placement.
#[derive(Debug, Clone)]
pub struct CoschedTuner {
    cfg: DwpTunerConfig,
    canonical: WeightDistribution,
    workers: NodeSet,
    sampler_a: TrimmedSampler,
    sampler_b: TrimmedSampler,
    stage: Stage,
    dwp: f64,
    prev_a: Option<f64>,
    prev_b: Option<f64>,
    history: Vec<(Stage, f64, f64, f64)>,
}

impl CoschedTuner {
    /// Start from DWP = 0 (canonical placement of B).
    pub fn new(
        canonical: WeightDistribution,
        workers: NodeSet,
        cfg: DwpTunerConfig,
    ) -> Result<Self, BwapError> {
        if !(cfg.step > 0.0 && cfg.step <= 1.0) {
            return Err(BwapError::InvalidConfig(format!("step {}", cfg.step)));
        }
        let sampler_a = TrimmedSampler::new(cfg.samples_per_iteration, cfg.trim)?;
        let sampler_b = TrimmedSampler::new(cfg.samples_per_iteration, cfg.trim)?;
        apply_dwp(&canonical, workers, 0.0)?;
        Ok(CoschedTuner {
            cfg,
            canonical,
            workers,
            sampler_a,
            sampler_b,
            stage: Stage::ProtectHighPriority,
            dwp: 0.0,
            prev_a: None,
            prev_b: None,
            history: Vec::new(),
        })
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Current DWP of B.
    pub fn dwp(&self) -> f64 {
        self.dwp
    }

    /// Whether the search ended.
    pub fn is_finished(&self) -> bool {
        self.stage == Stage::Done
    }

    /// `(stage, dwp, mean stall A, mean stall B)` per iteration.
    pub fn history(&self) -> &[(Stage, f64, f64, f64)] {
        &self.history
    }

    /// The placement to install before sampling starts.
    pub fn initial_weights(&self) -> WeightDistribution {
        apply_dwp(&self.canonical, self.workers, 0.0).expect("validated at construction")
    }

    /// Feed one pair of stall-rate measurements.
    pub fn on_samples(&mut self, stall_a: f64, stall_b: f64) -> TunerAction {
        if self.stage == Stage::Done {
            return TunerAction::Finished;
        }
        let ma = self.sampler_a.push(stall_a);
        let mb = self.sampler_b.push(stall_b);
        let (Some(ma), Some(mb)) = (ma, mb) else {
            return TunerAction::Continue;
        };
        self.history.push((self.stage, self.dwp, ma, mb));
        match self.stage {
            Stage::ProtectHighPriority => {
                let improving = match self.prev_a {
                    None => true,
                    Some(prev) => ma < prev * (1.0 - self.cfg.stage1_min_improvement),
                };
                self.prev_a = Some(ma);
                if improving {
                    self.raise()
                } else {
                    // A stabilized: the current DWP is the lower bound.
                    // Hand over to stage 2, seeding B's baseline with this
                    // window's measurement and immediately probing one
                    // step upward (stage 2 behaves like the stand-alone
                    // tuner's first iteration, §III-B-2).
                    self.stage = Stage::OptimizeBestEffort;
                    self.prev_b = Some(mb);
                    self.raise()
                }
            }
            Stage::OptimizeBestEffort => {
                let improving = match self.prev_b {
                    None => true,
                    Some(prev) => mb < prev * (1.0 - self.cfg.min_improvement),
                };
                self.prev_b = Some(mb);
                if improving {
                    self.raise()
                } else {
                    self.stage = Stage::Done;
                    TunerAction::Finished
                }
            }
            Stage::Done => TunerAction::Finished,
        }
    }

    fn raise(&mut self) -> TunerAction {
        if self.dwp >= 1.0 - 1e-9 {
            self.stage = Stage::Done;
            return TunerAction::Finished;
        }
        self.dwp = (self.dwp + self.cfg.step).min(1.0);
        let weights = apply_dwp(&self.canonical, self.workers, self.dwp).expect("dwp in range");
        TunerAction::Apply { dwp: self.dwp, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::NodeId;

    fn setup() -> CoschedTuner {
        let canonical = WeightDistribution::from_raw(vec![3.0, 3.0, 2.0, 2.0]).unwrap();
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let cfg = DwpTunerConfig {
            samples_per_iteration: 2,
            trim: 0,
            sample_interval_s: 0.1,
            step: 0.2,
            min_improvement: 0.002,
            stage1_min_improvement: 0.05,
        };
        CoschedTuner::new(canonical, workers, cfg).unwrap()
    }

    /// Simulate: A's stall falls until DWP >= bound, then flattens; B's
    /// stall is convex with minimum at `b_opt`.
    fn drive(bound: f64, b_opt: f64) -> (f64, Vec<Stage>) {
        let mut t = setup();
        let mut stages = vec![t.stage()];
        for _ in 0..500 {
            let d = t.dwp();
            let a_stall = 100.0 + 50.0 * (bound - d).max(0.0);
            let b_stall = 100.0 + 80.0 * (d - b_opt).powi(2);
            let action = t.on_samples(a_stall, b_stall);
            if *stages.last().unwrap() != t.stage() {
                stages.push(t.stage());
            }
            if action == TunerAction::Finished {
                break;
            }
        }
        (t.dwp(), stages)
    }

    #[test]
    fn two_stages_run_in_order() {
        let (_, stages) = drive(0.4, 0.8);
        assert_eq!(
            stages,
            vec![Stage::ProtectHighPriority, Stage::OptimizeBestEffort, Stage::Done]
        );
    }

    #[test]
    fn final_dwp_at_least_stage1_bound() {
        let (dwp, _) = drive(0.4, 0.8);
        assert!(dwp >= 0.4 - 1e-9, "dwp {dwp} below A's protection bound");
        // and near B's optimum (within one step overshoot)
        assert!(dwp <= 0.8 + 0.2 + 1e-9, "dwp {dwp}");
        assert!(dwp >= 0.8 - 0.2 - 1e-9, "dwp {dwp}");
    }

    #[test]
    fn b_already_optimal_at_bound_stops_quickly() {
        // B's optimum below A's bound: stage 1 may overshoot the bound by
        // one step (it probes to detect stabilization) and stage 2 probes
        // one more before stopping — never further.
        let (dwp, _) = drive(0.6, 0.2);
        assert!(dwp <= 0.6 + 2.0 * 0.2 + 1e-9, "dwp {dwp}");
    }

    #[test]
    fn reaches_full_dwp_when_both_improve_monotonically() {
        let mut t = setup();
        for _ in 0..500 {
            let d = t.dwp();
            // both strictly improving in DWP
            if t.on_samples(200.0 - 100.0 * d, 300.0 - 200.0 * d) == TunerAction::Finished {
                break;
            }
        }
        assert!((t.dwp() - 1.0).abs() < 1e-9);
        assert!(t.is_finished());
    }

    #[test]
    fn history_tracks_stages_and_means() {
        let mut t = setup();
        t.on_samples(100.0, 100.0);
        t.on_samples(100.0, 100.0);
        assert_eq!(t.history().len(), 1);
        let (stage, dwp, ma, mb) = t.history()[0];
        assert_eq!(stage, Stage::ProtectHighPriority);
        assert_eq!(dwp, 0.0);
        assert!((ma - 100.0).abs() < 1e-12);
        assert!((mb - 100.0).abs() < 1e-12);
    }
}
