//! Normalized per-node weight distributions.

use crate::error::BwapError;
use bwap_topology::{NodeId, NodeSet};
use std::fmt;

/// A page-placement weight distribution: `weights[i]` is the fraction of
/// pages node `i` should hold (the paper's `D = {w_1 ... w_N}`,
/// `Σ w_i = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightDistribution {
    w: Vec<f64>,
}

impl WeightDistribution {
    /// Normalize raw non-negative values into a distribution.
    pub fn from_raw(raw: Vec<f64>) -> Result<Self, BwapError> {
        if raw.is_empty() {
            return Err(BwapError::InvalidWeights("empty".into()));
        }
        if raw.iter().any(|&x| !(x.is_finite() && x >= 0.0)) {
            return Err(BwapError::InvalidWeights(format!("negative/non-finite in {raw:?}")));
        }
        let sum: f64 = raw.iter().sum();
        if sum <= 0.0 {
            return Err(BwapError::InvalidWeights("all zero".into()));
        }
        Ok(WeightDistribution { w: raw.into_iter().map(|x| x / sum).collect() })
    }

    /// Uniform over all `n` nodes (the `uniform-all` baseline).
    pub fn uniform(n: usize) -> Self {
        WeightDistribution { w: vec![1.0 / n as f64; n] }
    }

    /// Uniform over a node subset, zero elsewhere (the `uniform-workers`
    /// baseline when `set` is the worker set).
    pub fn uniform_over(set: NodeSet, n: usize) -> Result<Self, BwapError> {
        if set.is_empty() {
            return Err(BwapError::InvalidWorkers("empty set".into()));
        }
        if !set.is_subset(NodeSet::first(n)) {
            return Err(BwapError::InvalidWorkers(format!("{set} exceeds {n} nodes")));
        }
        let share = 1.0 / set.len() as f64;
        let mut w = vec![0.0; n];
        for node in set.iter() {
            w[node.idx()] = share;
        }
        Ok(WeightDistribution { w })
    }

    /// All pages on one node (first-touch's asymptotic shared-page
    /// behaviour).
    pub fn delta(node: NodeId, n: usize) -> Self {
        let mut w = vec![0.0; n];
        w[node.idx()] = 1.0;
        WeightDistribution { w }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when there are no entries (never for a valid distribution).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Weight of node `i`.
    pub fn get(&self, i: NodeId) -> f64 {
        self.w[i.idx()]
    }

    /// Raw slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Owned vector (for policy construction).
    pub fn to_vec(&self) -> Vec<f64> {
        self.w.clone()
    }

    /// Sum of weights over a node set (e.g. the aggregate worker weight the
    /// DWP factor controls).
    pub fn mass(&self, set: NodeSet) -> f64 {
        set.iter().map(|n| self.get(n)).sum()
    }

    /// Largest absolute per-node difference to another distribution.
    pub fn max_abs_diff(&self, other: &WeightDistribution) -> f64 {
        self.w.iter().zip(&other.w).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Coefficient of variation of the weights restricted to `set`
    /// (Observation 3's similarity metric).
    pub fn coefficient_of_variation(&self, set: NodeSet) -> f64 {
        let vals: Vec<f64> = set.iter().map(|n| self.get(n)).collect();
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }

    /// Check invariants (used by tests and debug assertions).
    pub fn is_normalized(&self) -> bool {
        (self.w.iter().sum::<f64>() - 1.0).abs() < 1e-9
            && self.w.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x))
    }
}

impl fmt::Display for WeightDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.w.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:.3}", v)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_raw_normalizes() {
        let d = WeightDistribution::from_raw(vec![2.0, 6.0]).unwrap();
        assert_eq!(d.as_slice(), &[0.25, 0.75]);
        assert!(d.is_normalized());
    }

    #[test]
    fn invalid_raw_rejected() {
        assert!(WeightDistribution::from_raw(vec![]).is_err());
        assert!(WeightDistribution::from_raw(vec![0.0, 0.0]).is_err());
        assert!(WeightDistribution::from_raw(vec![-1.0, 2.0]).is_err());
        assert!(WeightDistribution::from_raw(vec![f64::NAN]).is_err());
    }

    #[test]
    fn uniform_variants() {
        let u = WeightDistribution::uniform(4);
        assert!(u.is_normalized());
        assert_eq!(u.get(NodeId(2)), 0.25);
        let set = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let uw = WeightDistribution::uniform_over(set, 4).unwrap();
        assert_eq!(uw.as_slice(), &[0.0, 0.5, 0.5, 0.0]);
        assert!(WeightDistribution::uniform_over(NodeSet::EMPTY, 4).is_err());
        assert!(WeightDistribution::uniform_over(NodeSet::first(5), 4).is_err());
    }

    #[test]
    fn delta_and_mass() {
        let d = WeightDistribution::delta(NodeId(1), 3);
        assert_eq!(d.as_slice(), &[0.0, 1.0, 0.0]);
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        assert_eq!(d.mass(set), 1.0);
        assert_eq!(d.mass(NodeSet::single(NodeId(2))), 0.0);
    }

    #[test]
    fn cv_zero_for_uniform() {
        let u = WeightDistribution::uniform(4);
        assert_eq!(u.coefficient_of_variation(NodeSet::first(4)), 0.0);
        let skew = WeightDistribution::from_raw(vec![1.0, 3.0]).unwrap();
        assert!(skew.coefficient_of_variation(NodeSet::first(2)) > 0.4);
    }

    #[test]
    fn max_abs_diff() {
        let a = WeightDistribution::uniform(2);
        let b = WeightDistribution::from_raw(vec![1.0, 3.0]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_compact() {
        let d = WeightDistribution::uniform(2);
        assert_eq!(format!("{d}"), "[0.500 0.500]");
    }
}
