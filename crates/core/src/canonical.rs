//! The canonical tuner: optimal weights for the idealized bandwidth-bound
//! reference application (paper §III-A).

use crate::error::BwapError;
use crate::weights::WeightDistribution;
use bwap_topology::{BwMatrix, MachineTopology, NodeId, NodeSet};
use std::collections::HashMap;

/// `minbw(n_i) = min_{w ∈ workers} bw(n_i -> w)` — the bandwidth of the
/// weakest path from each memory node to any worker node (paper Eq. 4's
/// denominator).
pub fn min_bandwidths(bw: &BwMatrix, workers: NodeSet) -> Result<Vec<f64>, BwapError> {
    let n = bw.node_count();
    if workers.is_empty() {
        return Err(BwapError::InvalidWorkers("empty worker set".into()));
    }
    if !workers.is_subset(NodeSet::first(n)) {
        return Err(BwapError::InvalidWorkers(format!("{workers} exceeds {n} nodes")));
    }
    Ok((0..n)
        .map(|i| workers.iter().map(|w| bw.get(NodeId(i as u16), w)).fold(f64::INFINITY, f64::min))
        .collect())
}

/// The canonical weight distribution (paper Eq. 5; Eq. 2 when `workers` is
/// a single node): every node's weight proportional to its minimum
/// bandwidth to the worker set.
///
/// ```
/// use bwap_topology::{machines, NodeSet, NodeId};
/// use bwap::canonical_weights;
///
/// let m = machines::machine_a();
/// let w = canonical_weights(m.path_caps(), NodeSet::from_nodes([NodeId(0), NodeId(1)])).unwrap();
/// // Workers keep the largest weights; every node gets a non-zero share.
/// assert!(w.get(NodeId(0)) > w.get(NodeId(3)));
/// assert!(w.as_slice().iter().all(|&x| x > 0.0));
/// ```
pub fn canonical_weights(bw: &BwMatrix, workers: NodeSet) -> Result<WeightDistribution, BwapError> {
    WeightDistribution::from_raw(min_bandwidths(bw, workers)?)
}

/// Canonical weights for a concrete machine: Eq. 5 over the *rectangular*
/// memory×worker view of the bandwidth matrix — every memory node (rows,
/// CPU-less expander tiers included) gets a weight proportional to its
/// weakest path into the worker set (columns). Rejects worker sets that
/// include memory-only nodes, which can never host threads.
///
/// ```
/// use bwap_topology::machines;
/// use bwap::canonical_weights_on;
///
/// let m = machines::machine_tiered();
/// let w = canonical_weights_on(&m, m.worker_nodes()).unwrap();
/// // The slow expander tier still gets a non-zero share, proportional to
/// // its (lower) bandwidth toward the workers.
/// assert!(w.as_slice().iter().all(|&x| x > 0.0));
/// ```
pub fn canonical_weights_on(
    machine: &MachineTopology,
    workers: NodeSet,
) -> Result<WeightDistribution, BwapError> {
    if !workers.is_subset(machine.worker_nodes()) {
        return Err(BwapError::InvalidWorkers(format!(
            "{workers} includes memory-only nodes (workers must be within {})",
            machine.worker_nodes()
        )));
    }
    canonical_weights(machine.path_caps(), workers)
}

/// Installation-time cache of canonical distributions per worker set
/// (§III-A3: "the canonical tuner needs to run the profiling procedure for
/// the relevant combinations of worker node sets"). Profiling is expensive
/// (it runs the reference benchmark), so results are computed once per
/// worker-set mask and reused.
pub struct CanonicalTuner {
    cache: HashMap<u64, WeightDistribution>,
}

impl CanonicalTuner {
    /// Empty cache.
    pub fn new() -> Self {
        CanonicalTuner { cache: HashMap::new() }
    }

    /// Number of cached worker sets.
    pub fn cached_sets(&self) -> usize {
        self.cache.len()
    }

    /// Fetch the canonical distribution for `workers`, invoking `profile`
    /// (which measures the machine's bandwidth matrix under the reference
    /// workload) only on a cache miss.
    pub fn get_or_profile<F>(
        &mut self,
        workers: NodeSet,
        profile: F,
    ) -> Result<WeightDistribution, BwapError>
    where
        F: FnOnce() -> BwMatrix,
    {
        if let Some(hit) = self.cache.get(&workers.mask()) {
            return Ok(hit.clone());
        }
        let weights = canonical_weights(&profile(), workers)?;
        self.cache.insert(workers.mask(), weights.clone());
        Ok(weights)
    }

    /// Pre-seed the cache (e.g. from a profile shipped with the machine).
    pub fn insert(&mut self, workers: NodeSet, weights: WeightDistribution) {
        self.cache.insert(workers.mask(), weights);
    }
}

impl Default for CanonicalTuner {
    fn default() -> Self {
        CanonicalTuner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn eq5_on_fig1a_two_workers() {
        // Hand-computed from Fig. 1a with workers {N1, N2}:
        // minbw(N1) = min(9.2, 5.5), minbw(N3) = min(2.9, 3.6), ...
        let m = machines::machine_a();
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let mb = min_bandwidths(m.path_caps(), workers).unwrap();
        assert_eq!(mb, vec![5.5, 5.5, 2.9, 1.8, 1.8, 2.8, 1.8, 2.8]);
        let sum: f64 = mb.iter().sum();
        let w = canonical_weights(m.path_caps(), workers).unwrap();
        assert!((w.get(NodeId(0)) - 5.5 / sum).abs() < 1e-12);
        assert!((w.get(NodeId(3)) - 1.8 / sum).abs() < 1e-12);
        assert!(w.is_normalized());
    }

    #[test]
    fn eq2_single_worker_uses_row_to_that_worker() {
        // Single worker N5 (index 4): weights proportional to column 4 of
        // the matrix read as bw(i -> N5).
        let m = machines::machine_a();
        let w = canonical_weights(m.path_caps(), NodeSet::single(NodeId(4))).unwrap();
        let col: Vec<f64> =
            (0..8).map(|i| m.path_caps().get(NodeId(i as u16), NodeId(4))).collect();
        let sum: f64 = col.iter().sum();
        for i in 0..8 {
            assert!((w.get(NodeId(i as u16)) - col[i as usize] / sum).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_machine_gives_uniform_weights() {
        // On a fully symmetric machine the canonical distribution must
        // degenerate to uniform-all — BWAP's "do no harm" property.
        let m = machines::symmetric_quad();
        let w =
            canonical_weights(m.path_caps(), NodeSet::from_nodes([NodeId(0), NodeId(1)])).unwrap();
        // workers have local bw 10, remote 6: minbw(worker) = 6 (from the
        // other worker), minbw(non-worker) = 6 -> uniform.
        assert!(w.max_abs_diff(&WeightDistribution::uniform(4)) < 1e-12);
    }

    #[test]
    fn weights_grow_with_more_workers_toward_uniformity() {
        // Paper §IV-A: "as one enlarges the worker node set, the
        // inter-worker canonical weight distributions tend to uniformity".
        let m = machines::machine_a();
        let cv = |k: usize| {
            let workers = NodeSet::first(k);
            canonical_weights(m.path_caps(), workers)
                .unwrap()
                .coefficient_of_variation(m.all_nodes())
        };
        assert!(cv(8) < cv(2), "cv(8W)={} cv(2W)={}", cv(8), cv(2));
    }

    #[test]
    fn tiered_machine_weights_cover_the_expander_tier() {
        // The rectangular memory x worker view: rows = all 4 memory nodes
        // (2 of them CPU-less), columns = the 2 worker nodes.
        let m = machines::machine_tiered();
        let workers = m.worker_nodes();
        let mb = min_bandwidths(m.path_caps(), workers).unwrap();
        // Workers: min(local 18, cross 15) = 15; expanders: 9.9 both ways.
        assert_eq!(mb, vec![15.0, 15.0, 9.9, 9.9]);
        let w = canonical_weights_on(&m, workers).unwrap();
        assert!(w.is_normalized());
        // Fast tier out-weighs the slow tier, but the slow tier is used.
        assert!(w.get(NodeId(0)) > w.get(NodeId(2)));
        assert!(w.get(NodeId(2)) > 0.15);
    }

    #[test]
    fn memory_only_workers_rejected() {
        let m = machines::machine_tiered();
        // Node 2 is a CPU-less expander: it cannot be a worker.
        let err = canonical_weights_on(&m, NodeSet::from_nodes([NodeId(0), NodeId(2)]));
        assert!(err.is_err());
        // The raw-matrix entry point stays machine-agnostic.
        assert!(canonical_weights(m.path_caps(), NodeSet::single(NodeId(2))).is_ok());
    }

    #[test]
    fn empty_workers_rejected() {
        let m = machines::machine_b();
        assert!(canonical_weights(m.path_caps(), NodeSet::EMPTY).is_err());
        assert!(min_bandwidths(m.path_caps(), NodeSet::first(5)).is_err());
    }

    #[test]
    fn tuner_caches_per_worker_set() {
        let m = machines::machine_b();
        let mut tuner = CanonicalTuner::new();
        let mut profiles = 0;
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        for _ in 0..3 {
            let _ = tuner
                .get_or_profile(workers, || {
                    profiles += 1;
                    m.path_caps().clone()
                })
                .unwrap();
        }
        assert_eq!(profiles, 1);
        assert_eq!(tuner.cached_sets(), 1);
        // different worker set -> new profile
        let _ = tuner
            .get_or_profile(NodeSet::single(NodeId(2)), || {
                profiles += 1;
                m.path_caps().clone()
            })
            .unwrap();
        assert_eq!(profiles, 2);
    }
}
