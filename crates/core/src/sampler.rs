//! Outlier-trimmed stall-rate sampling (paper §III-B1: "we collect n
//! measurements over an interval of t seconds. We then sort and discard the
//! first and the last c measurements to filter outliers").

use crate::error::BwapError;

/// Collects `n` samples, then yields their trimmed mean (sorted, `trim`
/// dropped at each end).
#[derive(Debug, Clone)]
pub struct TrimmedSampler {
    n: usize,
    trim: usize,
    buf: Vec<f64>,
}

impl TrimmedSampler {
    /// `n` samples per window, `trim` discarded at each end. Requires
    /// `n > 2 * trim`.
    pub fn new(n: usize, trim: usize) -> Result<Self, BwapError> {
        if n == 0 || n <= 2 * trim {
            return Err(BwapError::InvalidConfig(format!(
                "need n > 2*trim, got n={n}, trim={trim}"
            )));
        }
        Ok(TrimmedSampler { n, trim, buf: Vec::with_capacity(n) })
    }

    /// Samples still needed before the window completes.
    pub fn remaining(&self) -> usize {
        self.n - self.buf.len()
    }

    /// Push one measurement; returns the trimmed mean when the window
    /// fills (and resets for the next window).
    pub fn push(&mut self, v: f64) -> Option<f64> {
        self.buf.push(v);
        if self.buf.len() < self.n {
            return None;
        }
        self.buf.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let kept = &self.buf[self.trim..self.n - self.trim];
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        self.buf.clear();
        Some(mean)
    }

    /// Drop any partial window (used when the tuner restarts a phase).
    pub fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_config() {
        assert!(TrimmedSampler::new(0, 0).is_err());
        assert!(TrimmedSampler::new(10, 5).is_err());
        assert!(TrimmedSampler::new(10, 4).is_ok());
    }

    #[test]
    fn trimmed_mean_filters_outliers() {
        // Paper defaults: n=20, c=5.
        let mut s = TrimmedSampler::new(20, 5).unwrap();
        let mut result = None;
        for i in 0..20 {
            let v = match i {
                0 => 1e12,  // spike
                1 => 0.0,   // dropout
                _ => 100.0, // steady state
            };
            result = s.push(v);
            if i < 19 {
                assert!(result.is_none());
            }
        }
        assert_eq!(result, Some(100.0));
        // window reset
        assert_eq!(s.remaining(), 20);
    }

    #[test]
    fn mean_of_clean_window() {
        let mut s = TrimmedSampler::new(4, 1).unwrap();
        s.push(1.0);
        s.push(2.0);
        s.push(3.0);
        let m = s.push(4.0).unwrap();
        assert!((m - 2.5).abs() < 1e-12);
    }

    #[test]
    fn reset_discards_partial() {
        let mut s = TrimmedSampler::new(3, 0).unwrap();
        s.push(5.0);
        s.reset();
        assert_eq!(s.remaining(), 3);
        s.push(1.0);
        s.push(1.0);
        assert_eq!(s.push(1.0), Some(1.0));
    }
}
