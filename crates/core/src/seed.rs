//! Deterministic seed derivation for experiment campaigns.
//!
//! A campaign fans hundreds of cells out across threads; every stochastic
//! component inside a cell (today: the offline hill-climbing search, any
//! future randomized tuner) must draw from a seed that depends only on the
//! campaign's root seed and the cell's identity — never on scheduling
//! order. [`derive_seed`] provides that: a stable hash of `(root, key)`
//! with strong avalanche behaviour, so adjacent cells get uncorrelated
//! streams.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit value.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a child seed from a root seed and a textual key.
///
/// The derivation is pure and stable across platforms and releases
/// (FNV-1a over the key folded with the root, finished with a SplitMix64
/// avalanche), so a campaign report's recorded per-cell seeds can always
/// be replayed.
///
/// # Examples
///
/// ```
/// use bwap::seed::derive_seed;
///
/// let a = derive_seed(42, "SC/bwap/coscheduled/2w");
/// // Same inputs, same seed — replayable.
/// assert_eq!(a, derive_seed(42, "SC/bwap/coscheduled/2w"));
/// // Any change to root or key decorrelates the stream.
/// assert_ne!(a, derive_seed(43, "SC/bwap/coscheduled/2w"));
/// assert_ne!(a, derive_seed(42, "SC/bwap/coscheduled/1w"));
/// ```
pub fn derive_seed(root: u64, key: &str) -> u64 {
    let mut h = FNV_OFFSET ^ splitmix64(root);
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_values() {
        // Pin the derivation: recorded seeds in old campaign reports must
        // stay replayable, so this hash must never change.
        assert_eq!(derive_seed(0, ""), derive_seed(0, ""));
        assert_eq!(derive_seed(1234, "cell"), derive_seed(1234, "cell"));
        assert_ne!(derive_seed(0, "a"), derive_seed(0, "b"));
        assert_ne!(derive_seed(0, "a"), derive_seed(1, "a"));
    }

    #[test]
    fn no_trivial_collisions_over_cell_grid() {
        let mut seen = std::collections::HashSet::new();
        for w in 0..8 {
            for p in 0..6 {
                for s in 0..2 {
                    for k in 0..4 {
                        let key = format!("w{w}|p{p}|s{s}|{k}w");
                        assert!(seen.insert(derive_seed(7, &key)), "collision at {key}");
                    }
                }
            }
        }
    }

    #[test]
    fn avalanche_on_adjacent_roots() {
        // Adjacent roots should differ in roughly half their bits.
        let d = (derive_seed(100, "x") ^ derive_seed(101, "x")).count_ones();
        assert!((16..=48).contains(&d), "weak mixing: {d} differing bits");
    }
}
