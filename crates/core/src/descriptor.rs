//! Canonical, content-addressed cell descriptors.
//!
//! A campaign cell's result is a pure function of its inputs: the machine
//! topology, the workload (or phase timeline), the effective placement
//! policy, the scenario, the worker count, the DWP point, the simulation
//! config (including the engine mode, which is pinned bit-identical), and
//! the seed. [`CellDescriptor`] captures *all* of those inputs in one
//! stable, versioned, serde-free text serialization plus a content hash —
//! the foundation for exact memoization: equal descriptors imply
//! byte-identical deterministic results, by construction (and enforced by
//! proptest in `bwap-runtime`).
//!
//! Design rules, in priority order:
//!
//! 1. **Bit-exact.** Every `f64` is serialized via [`f64::to_bits`] in
//!    hex, never through decimal formatting — two configs that differ in
//!    the last ulp get different descriptors.
//! 2. **Versioned.** The header line carries a format version; any change
//!    to what a descriptor covers or how it is encoded must bump
//!    [`FORMAT_VERSION`], which invalidates every on-disk cache entry
//!    rather than silently aliasing old results.
//! 3. **Unambiguous.** Fields are `name=value` lines; names come from a
//!    builder that forbids the separator characters, so no two distinct
//!    input structures can serialize to the same text.
//! 4. **Collision-proof by construction.** The FNV-style hash is only an
//!    index; consumers that dedup or cache compare the full descriptor
//!    text before sharing a result, so a 64-bit hash collision can cost
//!    a duplicate execution but never a wrong result.
//!
//! # Examples
//!
//! ```
//! use bwap::descriptor::DescriptorBuilder;
//!
//! let mut b = DescriptorBuilder::new("bwap-cell");
//! b.field_str("workload", "SC");
//! b.field_u64("workers", 2);
//! b.field_f64("dwp", 0.35);
//! let d = b.finish();
//! assert!(d.text().starts_with("bwap-cell-descriptor v1\n"));
//! // Same inputs, same descriptor and hash — content-addressed.
//! let mut b2 = DescriptorBuilder::new("bwap-cell");
//! b2.field_str("workload", "SC");
//! b2.field_u64("workers", 2);
//! b2.field_f64("dwp", 0.35);
//! assert_eq!(d, b2.finish());
//! ```

use crate::seed::derive_seed;

/// Version of the descriptor text format. Bump on ANY change to the
/// encoding or to the set of fields a consumer serializes — stale cache
/// entries from older versions must never alias current results.
pub const FORMAT_VERSION: u32 = 1;

/// A finished canonical descriptor: the full text and its content hash.
///
/// Equality is on the full text (the hash is derived, never trusted as a
/// proxy); ordering is on the text too, so descriptor sets sort stably.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellDescriptor {
    text: String,
    hash: u64,
}

impl CellDescriptor {
    /// The canonical serialized form, including the versioned header.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The 64-bit content hash of [`Self::text`] — an *index*, not an
    /// identity: always compare texts before treating two descriptors as
    /// the same cell.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The hash formatted as the fixed-width lowercase hex token used for
    /// cache file names and `dedup_class` provenance labels.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// Reconstruct a descriptor from serialized text (e.g. read back from
    /// a cache entry). Returns `None` if the header is missing or carries
    /// a different format version — stale entries are rejected, never
    /// reinterpreted.
    pub fn from_text(text: &str) -> Option<Self> {
        let header = text.lines().next()?;
        let expected = format!("{DESCRIPTOR_MAGIC} v{FORMAT_VERSION}");
        if header != expected {
            return None;
        }
        let hash = content_hash(text);
        Some(Self { text: text.to_string(), hash })
    }
}

/// First token of the header line; the builder's `kind` is folded into the
/// body instead so every descriptor shares one parseable header.
const DESCRIPTOR_MAGIC: &str = "bwap-cell-descriptor";

/// Hash the canonical text. FNV-1a 64 over the bytes, finished with the
/// same SplitMix64 avalanche as [`derive_seed`] (root 0 keeps the
/// derivation pure on the text).
pub fn content_hash(text: &str) -> u64 {
    derive_seed(0, text)
}

/// Incremental builder for [`CellDescriptor`]s.
///
/// Field names must be non-empty and free of `=` and newline characters
/// (checked, panics on violation — a malformed name is a programming
/// error, not data). Values are encoded so they cannot contain a raw
/// newline: strings are escaped, numbers are formatted from their bit
/// patterns.
#[derive(Debug)]
pub struct DescriptorBuilder {
    text: String,
}

impl DescriptorBuilder {
    /// Start a descriptor of the given kind (e.g. `"bwap-cell"`). The kind
    /// is recorded as the first body field so differently-shaped
    /// descriptors can never alias.
    pub fn new(kind: &str) -> Self {
        let mut b = Self { text: format!("{DESCRIPTOR_MAGIC} v{FORMAT_VERSION}\n") };
        b.field_str("kind", kind);
        b
    }

    fn push_name(&mut self, name: &str) {
        assert!(
            !name.is_empty() && !name.contains('=') && !name.contains('\n'),
            "invalid descriptor field name: {name:?}"
        );
        self.text.push_str(name);
        self.text.push('=');
    }

    /// A string field. The value is escaped (`\\`, `\n`, `\r` → escape
    /// sequences) so arbitrary workload/policy names stay line-safe and
    /// unambiguous.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.push_name(name);
        self.text.push('s');
        for c in value.chars() {
            match c {
                '\\' => self.text.push_str("\\\\"),
                '\n' => self.text.push_str("\\n"),
                '\r' => self.text.push_str("\\r"),
                c => self.text.push(c),
            }
        }
        self.text.push('\n');
    }

    /// An unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.push_name(name);
        self.text.push_str(&format!("u{value}\n"));
    }

    /// A float field, serialized bit-exactly via [`f64::to_bits`] hex.
    /// `-0.0`, NaN payloads and last-ulp differences all produce distinct
    /// descriptors — which is exactly right for exact memoization.
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.push_name(name);
        self.text.push_str(&format!("f{:016x}\n", value.to_bits()));
    }

    /// A boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.push_name(name);
        self.text.push_str(if value { "b1\n" } else { "b0\n" });
    }

    /// Open a labelled section: a marker field that scopes the fields
    /// that follow (purely textual — sections exist so list-shaped data
    /// like topology nodes serializes unambiguously with a count).
    pub fn section(&mut self, name: &str, count: usize) {
        self.push_name(name);
        self.text.push_str(&format!("#{count}\n"));
    }

    /// Finish: freeze the text and compute the content hash.
    pub fn finish(self) -> CellDescriptor {
        let hash = content_hash(&self.text);
        CellDescriptor { text: self.text, hash }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(kind: &str, dwp: f64) -> CellDescriptor {
        let mut b = DescriptorBuilder::new(kind);
        b.field_str("workload", "SC");
        b.field_f64("dwp", dwp);
        b.finish()
    }

    #[test]
    fn equal_inputs_equal_descriptor() {
        assert_eq!(simple("cell", 0.3), simple("cell", 0.3));
        assert_eq!(simple("cell", 0.3).hash(), simple("cell", 0.3).hash());
    }

    #[test]
    fn distinct_inputs_distinct_text() {
        assert_ne!(simple("cell", 0.3), simple("cell", 0.30000000000000004));
        assert_ne!(simple("cell", 0.3), simple("probe", 0.3));
        // Negative zero is a different bit pattern, hence a different cell.
        assert_ne!(simple("cell", 0.0), simple("cell", -0.0));
    }

    #[test]
    fn field_order_matters() {
        let mut a = DescriptorBuilder::new("k");
        a.field_u64("x", 1);
        a.field_u64("y", 2);
        let mut b = DescriptorBuilder::new("k");
        b.field_u64("y", 2);
        b.field_u64("x", 1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_escaping_is_unambiguous() {
        let mut a = DescriptorBuilder::new("k");
        a.field_str("name", "a\nb");
        let mut b = DescriptorBuilder::new("k");
        b.field_str("name", "a\\nb");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn round_trips_through_text() {
        let d = simple("cell", 0.45);
        let back = CellDescriptor::from_text(d.text()).expect("round trip");
        assert_eq!(d, back);
        assert_eq!(d.hash(), back.hash());
    }

    #[test]
    fn stale_version_rejected() {
        let d = simple("cell", 0.45);
        let stale = d.text().replacen("v1", "v0", 1);
        assert!(CellDescriptor::from_text(&stale).is_none());
        assert!(CellDescriptor::from_text("").is_none());
        assert!(CellDescriptor::from_text("garbage\nkind=scell\n").is_none());
    }

    #[test]
    fn hash_hex_is_stable_width() {
        let d = simple("cell", 0.0);
        assert_eq!(d.hash_hex().len(), 16);
        assert_eq!(u64::from_str_radix(&d.hash_hex(), 16).unwrap(), d.hash());
    }

    #[test]
    #[should_panic(expected = "invalid descriptor field name")]
    fn bad_field_name_panics() {
        let mut b = DescriptorBuilder::new("k");
        b.field_u64("a=b", 1);
    }
}
