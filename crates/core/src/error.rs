//! Error type for BWAP decision logic.

use std::fmt;

/// Errors from weight computation and tuning.
#[derive(Debug, Clone, PartialEq)]
pub enum BwapError {
    /// Weights were empty, negative, non-finite, or all zero.
    InvalidWeights(String),
    /// The worker set was empty or outside the machine.
    InvalidWorkers(String),
    /// A DWP value outside `[0, 1]`.
    InvalidDwp(f64),
    /// Sampler/tuner configuration inconsistency.
    InvalidConfig(String),
}

impl fmt::Display for BwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BwapError::InvalidWeights(s) => write!(f, "invalid weights: {s}"),
            BwapError::InvalidWorkers(s) => write!(f, "invalid workers: {s}"),
            BwapError::InvalidDwp(v) => write!(f, "DWP {v} outside [0,1]"),
            BwapError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
        }
    }
}

impl std::error::Error for BwapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(BwapError::InvalidDwp(1.5).to_string().contains("1.5"));
        assert!(BwapError::InvalidConfig("n<2c".into()).to_string().contains("n<2c"));
    }
}
