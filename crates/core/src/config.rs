//! BWAP runtime configuration — the knobs the paper's `libnuma` extension
//! exposes.

use crate::dwp::DwpTunerConfig;

/// How weighted interleaving is physically enforced (paper §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveMode {
    /// The kernel-level weighted interleave policy (exact ratios; requires
    /// the patched kernel — here, `numasim`'s native policy).
    Kernel,
    /// The portable user-level approximation (Algorithm 1): a handful of
    /// uniform-interleave `mbind` calls. The paper's default for its
    /// evaluation; it reports at most 3 % difference from kernel mode.
    UserLevel,
}

/// Configuration of the BWAP placement pipeline.
#[derive(Debug, Clone)]
pub struct BwapConfig {
    /// Enforcement mechanism.
    pub mode: InterleaveMode,
    /// Hill-climbing parameters.
    pub tuner: DwpTunerConfig,
    /// `true` — run the online DWP search (normal operation).
    /// `false` — stay at `fixed_dwp` (used for the static sweeps of
    /// Fig. 4 and for ablations).
    pub online_tuning: bool,
    /// Starting (or, with `online_tuning = false`, permanent) DWP.
    pub fixed_dwp: f64,
    /// Disable the canonical tuner and start from uniform-all — the
    /// paper's `BWAP-uniform` ablation variant.
    pub uniform_canonical: bool,
    /// Seed for any stochastic tuner component. The paper's DWP tuner is
    /// fully deterministic, so today this only identifies the run: the
    /// campaign engine (`bwap-runtime::campaign`) derives one seed per
    /// experiment cell via [`crate::seed::derive_seed`], plumbs it in
    /// here, and records it in the report so every cell is replayable.
    pub seed: u64,
}

impl Default for BwapConfig {
    fn default() -> Self {
        BwapConfig {
            mode: InterleaveMode::UserLevel,
            tuner: DwpTunerConfig::default(),
            online_tuning: true,
            fixed_dwp: 0.0,
            uniform_canonical: false,
            seed: 0,
        }
    }
}

impl BwapConfig {
    /// The `BWAP-uniform` variant (§IV: canonical tuner disabled, DWP
    /// search departs from uniform-all).
    pub fn bwap_uniform() -> Self {
        BwapConfig { uniform_canonical: true, ..BwapConfig::default() }
    }

    /// A static placement at the given DWP (no online search).
    pub fn static_dwp(dwp: f64) -> Self {
        BwapConfig { online_tuning: false, fixed_dwp: dwp, ..BwapConfig::default() }
    }

    /// Kernel-level enforcement.
    pub fn kernel_mode() -> Self {
        BwapConfig { mode: InterleaveMode::Kernel, ..BwapConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BwapConfig::default();
        assert_eq!(c.mode, InterleaveMode::UserLevel);
        assert_eq!(c.tuner.samples_per_iteration, 20);
        assert_eq!(c.tuner.trim, 5);
        assert!((c.tuner.sample_interval_s - 0.2).abs() < 1e-12);
        assert!((c.tuner.step - 0.10).abs() < 1e-12);
        assert!(c.online_tuning);
        assert!(!c.uniform_canonical);
    }

    #[test]
    fn variants() {
        assert!(BwapConfig::bwap_uniform().uniform_canonical);
        let s = BwapConfig::static_dwp(0.4);
        assert!(!s.online_tuning);
        assert_eq!(s.fixed_dwp, 0.4);
        assert_eq!(BwapConfig::kernel_mode().mode, InterleaveMode::Kernel);
    }
}
