//! User-level weighted interleaving — the paper's Algorithm 1.
//!
//! Mainstream kernels lack a weighted-interleave policy, so BWAP's portable
//! mode approximates one with the tools `libnuma` has: split the segment
//! into contiguous sub-ranges and `mbind` each with *uniform* interleaving
//! over a shrinking node set. Visiting nodes in ascending weight order and
//! sizing sub-range `k` as `|nodes_k| * (w_k - w_{k-1}) * len` makes the
//! aggregate per-node page ratios equal the weights, with only
//! `O(#nodes)` mbind calls.

use crate::error::BwapError;
use crate::weights::WeightDistribution;
use bwap_topology::{NodeId, NodeSet};

/// One `mbind(range, MPOL_INTERLEAVE, nodes)` call of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MbindCall {
    /// First page of the sub-range (relative to the segment).
    pub start_page: u64,
    /// Sub-range length in pages.
    pub len_pages: u64,
    /// Node set to uniformly interleave the sub-range over.
    pub nodes: NodeSet,
}

/// Compute the user-level plan for a segment of `total_pages` pages
/// (paper Algorithm 1). Zero-weight nodes are excluded; zero-length
/// sub-ranges are omitted. The calls partition `[0, total_pages)`.
///
/// ```
/// use bwap::{user_level_plan, WeightDistribution};
///
/// let w = WeightDistribution::from_raw(vec![1.0, 1.0, 2.0]).unwrap();
/// let plan = user_level_plan(1000, &w).unwrap();
/// // First sub-range interleaves over all three nodes, the last one is
/// // dedicated to the heaviest node.
/// assert_eq!(plan.first().unwrap().nodes.len(), 3);
/// assert_eq!(plan.last().unwrap().nodes.len(), 1);
/// ```
pub fn user_level_plan(
    total_pages: u64,
    weights: &WeightDistribution,
) -> Result<Vec<MbindCall>, BwapError> {
    if total_pages == 0 {
        return Ok(Vec::new());
    }
    if !weights.is_normalized() {
        return Err(BwapError::InvalidWeights("not normalized".into()));
    }
    // Nodes with positive weight, ascending weight (id tie-break for
    // determinism).
    let mut nodes: Vec<(NodeId, f64)> = weights
        .as_slice()
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(i, &w)| (NodeId(i as u16), w))
        .collect();
    nodes.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));

    let mut plan = Vec::new();
    let mut cursor = 0u64; // pages emitted so far
    let mut exact = 0.0f64; // exact (fractional) pages emitted so far
    let mut weight_prev = 0.0f64;
    let mut active: Vec<(NodeId, f64)> = nodes;
    while !active.is_empty() {
        let (min_node, min_weight) = active[0];
        let delta = min_weight - weight_prev;
        let exact_size = active.len() as f64 * delta * total_pages as f64;
        exact += exact_size;
        // Cumulative rounding keeps total error under one page per call.
        let boundary = if active.len() == 1 {
            total_pages // last call absorbs residual rounding
        } else {
            (exact.round() as u64).min(total_pages)
        };
        let len = boundary.saturating_sub(cursor);
        if len > 0 {
            plan.push(MbindCall {
                start_page: cursor,
                len_pages: len,
                nodes: NodeSet::from_nodes(active.iter().map(|&(n, _)| n)),
            });
            cursor += len;
        }
        weight_prev = min_weight;
        active.retain(|&(n, _)| n != min_node);
    }
    debug_assert_eq!(cursor, total_pages);
    Ok(plan)
}

/// Expected pages per node if every call of `plan` interleaved its
/// sub-range perfectly uniformly (fractional; used to verify the
/// approximation quality against the target weights).
pub fn expected_node_counts(plan: &[MbindCall], node_count: usize) -> Vec<f64> {
    let mut counts = vec![0.0f64; node_count];
    for call in plan {
        let share = call.len_pages as f64 / call.nodes.len() as f64;
        for n in call.nodes.iter() {
            counts[n.idx()] += share;
        }
    }
    counts
}

/// The weight distribution a user-level plan *actually realizes* for a
/// segment of `total_pages` pages (including sub-range rounding). Useful
/// to pre-compute the placement `mbind`-before-first-touch would produce,
/// and to quantify Algorithm 1's approximation against the exact kernel
/// policy.
pub fn realized_weights(
    total_pages: u64,
    weights: &WeightDistribution,
) -> Result<WeightDistribution, BwapError> {
    if total_pages == 0 {
        return Ok(weights.clone());
    }
    let plan = user_level_plan(total_pages, weights)?;
    WeightDistribution::from_raw(expected_node_counts(&plan, weights.len()))
}

/// Worst-case per-node deviation (fraction of pages) between the plan's
/// expected placement and the target weights.
pub fn plan_error(plan: &[MbindCall], weights: &WeightDistribution, total_pages: u64) -> f64 {
    if total_pages == 0 {
        return 0.0;
    }
    let counts = expected_node_counts(plan, weights.len());
    counts
        .iter()
        .zip(weights.as_slice())
        .map(|(c, w)| (c / total_pages as f64 - w).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(raw: Vec<f64>) -> WeightDistribution {
        WeightDistribution::from_raw(raw).unwrap()
    }

    #[test]
    fn uniform_weights_give_single_call() {
        let plan = user_level_plan(100, &w(vec![1.0, 1.0, 1.0, 1.0])).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len_pages, 100);
        assert_eq!(plan[0].nodes.len(), 4);
    }

    #[test]
    fn plan_partitions_the_segment() {
        let plan = user_level_plan(997, &w(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
        let mut cursor = 0;
        for call in &plan {
            assert_eq!(call.start_page, cursor);
            cursor += call.len_pages;
        }
        assert_eq!(cursor, 997);
    }

    #[test]
    fn node_sets_shrink_by_ascending_weight() {
        let plan = user_level_plan(1000, &w(vec![4.0, 1.0, 2.0, 3.0])).unwrap();
        // sets: {all} -> minus node1 -> minus node2 -> minus node3
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].nodes.len(), 4);
        assert!(!plan[1].nodes.contains(bwap_topology::NodeId(1)));
        assert!(!plan[2].nodes.contains(bwap_topology::NodeId(2)));
        assert_eq!(plan[3].nodes.to_vec(), vec![bwap_topology::NodeId(0)]);
    }

    #[test]
    fn expected_counts_match_weights() {
        let weights = w(vec![1.0, 2.0, 3.0, 4.0]);
        let plan = user_level_plan(100_000, &weights).unwrap();
        let err = plan_error(&plan, &weights, 100_000);
        assert!(err < 1e-4, "plan error {err}");
    }

    #[test]
    fn exact_algebra_small_example() {
        // weights .25/.75 over 100 pages: call 1 = 2 nodes * .25 * 100 = 50
        // pages over both; call 2 = 50 pages on the heavy node.
        // Node0: 25, node1: 25 + 50 = 75. Exact.
        let weights = w(vec![1.0, 3.0]);
        let plan = user_level_plan(100, &weights).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].len_pages, 50);
        assert_eq!(plan[1].len_pages, 50);
        let counts = expected_node_counts(&plan, 2);
        assert_eq!(counts, vec![25.0, 75.0]);
    }

    #[test]
    fn zero_weight_nodes_receive_nothing() {
        let weights = w(vec![0.0, 1.0, 1.0, 0.0]);
        let plan = user_level_plan(1000, &weights).unwrap();
        for call in &plan {
            assert!(!call.nodes.contains(bwap_topology::NodeId(0)));
            assert!(!call.nodes.contains(bwap_topology::NodeId(3)));
        }
        let counts = expected_node_counts(&plan, 4);
        assert_eq!(counts[0], 0.0);
        assert_eq!(counts[3], 0.0);
        assert_eq!(counts[1] + counts[2], 1000.0);
    }

    #[test]
    fn single_node_degenerates_to_bind() {
        let plan = user_level_plan(42, &w(vec![0.0, 1.0])).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len_pages, 42);
        assert_eq!(plan[0].nodes.to_vec(), vec![bwap_topology::NodeId(1)]);
    }

    #[test]
    fn empty_segment_empty_plan() {
        assert!(user_level_plan(0, &w(vec![1.0, 1.0])).unwrap().is_empty());
    }

    #[test]
    fn call_count_bounded_by_distinct_weights() {
        // Many equal weights collapse into few calls.
        let weights = w(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
        let plan = user_level_plan(10_000, &weights).unwrap();
        assert!(plan.len() <= 8, "{} calls", plan.len());
        let err = plan_error(&plan, &weights, 10_000);
        assert!(err < 1e-3, "plan error {err}");
    }

    #[test]
    fn realized_weights_close_to_target() {
        let weights = w(vec![5.5, 5.5, 2.9, 1.8, 1.8, 2.8, 1.8, 2.8]);
        let realized = realized_weights(65_536, &weights).unwrap();
        assert!(realized.max_abs_diff(&weights) < 1e-3);
        assert!(realized.is_normalized());
        // zero pages: identity
        assert_eq!(realized_weights(0, &weights).unwrap(), weights);
    }

    #[test]
    fn tiny_segments_still_partition() {
        for pages in 1..20u64 {
            let weights = w(vec![1.0, 2.0, 3.0]);
            let plan = user_level_plan(pages, &weights).unwrap();
            let total: u64 = plan.iter().map(|c| c.len_pages).sum();
            assert_eq!(total, pages);
        }
    }
}
