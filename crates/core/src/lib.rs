//! **BWAP** — bandwidth-aware weighted page interleaving for NUMA systems.
//!
//! This crate implements the paper's contribution as *pure decision logic*,
//! independent of any particular OS binding: feed it bandwidth matrices and
//! stall-rate samples, get back weight distributions and `mbind` plans. The
//! `bwap-runtime` crate wires it to the simulated OS (`numasim`); the same
//! state machines would drive a real `libnuma` extension unchanged.
//!
//! # Pipeline (paper §III)
//!
//! 1. **Canonical tuner** ([`canonical`]): offline, per machine and worker
//!    set. From a profiled bandwidth matrix it computes the *canonical
//!    weight distribution* — each node weighted by the bandwidth of its
//!    weakest path to any worker (Eq. 5; Eq. 2 for a single worker):
//!    `w_i = minbw(n_i) / Σ_j minbw(n_j)` with
//!    `minbw(n) = min_{w ∈ W} bw(n -> w)`.
//! 2. **DWP tuner** ([`dwp`]): online. Reduces N-dimensional placement to
//!    the scalar *data-to-worker proximity* factor: `DWP = 0` is the
//!    canonical distribution, `DWP = 1` packs everything onto the worker
//!    set, preserving canonical proportions inside the worker and
//!    non-worker subsets. A hill climber driven by trimmed stall-rate
//!    samples (n = 20 per iteration, trim c = 5, step x = 10 %) raises DWP
//!    while stalls keep falling.
//! 3. **Placement** ([`placement`]): either the kernel-level weighted
//!    interleave policy, or the portable user-level approximation (the
//!    paper's Algorithm 1) that issues a handful of uniform-interleave
//!    `mbind` calls over nested node sets whose sub-range sizes make the
//!    aggregate per-node ratios match the weights.
//!
//! The co-scheduled variant (§III-B3) is in [`dwp::coschedule`].
//!
//! # Examples
//!
//! The whole pipeline is pure: feed it a bandwidth matrix, get weights.
//!
//! ```
//! use bwap::{apply_dwp, canonical_weights, user_level_plan};
//! use bwap_topology::{machines, NodeSet};
//!
//! let machine = machines::machine_a();
//! let workers = machine.best_worker_set(2);
//!
//! // Canonical tuner (Eq. 5): weight each node by its weakest path to a
//! // worker.
//! let canonical = canonical_weights(machine.path_caps(), workers)?;
//! assert!(canonical.is_normalized());
//!
//! // DWP tuner: DWP = 1 packs all mass onto the worker set.
//! let packed = apply_dwp(&canonical, workers, 1.0)?;
//! let on_workers: f64 = workers.iter().map(|n| packed.as_slice()[n.idx()]).sum();
//! assert!((on_workers - 1.0).abs() < 1e-9);
//!
//! // Algorithm 1: realize any distribution with a few uniform-interleave
//! // mbind calls.
//! let plan = user_level_plan(4096, &apply_dwp(&canonical, workers, 0.3)?)?;
//! assert!(!plan.is_empty());
//! # Ok::<(), bwap::BwapError>(())
//! ```

pub mod canonical;
pub mod config;
pub mod descriptor;
pub mod dwp;
pub mod error;
pub mod placement;
pub mod sampler;
pub mod seed;
pub mod weights;

pub use canonical::{canonical_weights, canonical_weights_on, min_bandwidths, CanonicalTuner};
pub use config::{BwapConfig, InterleaveMode};
pub use descriptor::{CellDescriptor, DescriptorBuilder};
pub use dwp::{apply_dwp, DwpTuner, DwpTunerConfig, TunerAction};
pub use error::BwapError;
pub use placement::{realized_weights, user_level_plan, MbindCall};
pub use sampler::TrimmedSampler;
pub use seed::derive_seed;
pub use weights::WeightDistribution;
