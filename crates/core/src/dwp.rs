//! The DWP tuner: one-dimensional online search over the
//! data-to-worker-proximity factor (paper §III-B).

pub mod coschedule;

use crate::error::BwapError;
use crate::sampler::TrimmedSampler;
use crate::weights::WeightDistribution;
use bwap_topology::NodeSet;

/// Re-balance a canonical distribution by the DWP factor: `dwp = 0` keeps
/// the canonical weights; `dwp = 1` moves all mass onto the worker set.
/// Relative weights *within* the worker set and *within* the non-worker
/// set are preserved (Observation 3: per-set proportions transfer across
/// applications; only the split between the sets is application-specific).
pub fn apply_dwp(
    canonical: &WeightDistribution,
    workers: NodeSet,
    dwp: f64,
) -> Result<WeightDistribution, BwapError> {
    if !(0.0..=1.0).contains(&dwp) {
        return Err(BwapError::InvalidDwp(dwp));
    }
    if workers.is_empty() {
        return Err(BwapError::InvalidWorkers("empty worker set".into()));
    }
    let n = canonical.len();
    if !workers.is_subset(NodeSet::first(n)) {
        return Err(BwapError::InvalidWorkers(format!("{workers} exceeds {n} nodes")));
    }
    let a0 = canonical.mass(workers);
    if a0 <= 0.0 {
        return Err(BwapError::InvalidWeights(
            "canonical distribution gives workers zero mass".into(),
        ));
    }
    let non_worker_mass = 1.0 - a0;
    let a = a0 + dwp * non_worker_mass;
    let mut w = canonical.to_vec();
    for (i, wi) in w.iter_mut().enumerate() {
        let is_worker = workers.contains(bwap_topology::NodeId(i as u16));
        if is_worker {
            *wi *= a / a0;
        } else if non_worker_mass > 0.0 {
            *wi *= (1.0 - a) / non_worker_mass;
        }
    }
    WeightDistribution::from_raw(w)
}

/// Hill-climbing parameters (paper defaults from §IV: n = 20, c = 5,
/// t = 0.2 s, x = 10 %).
#[derive(Debug, Clone)]
pub struct DwpTunerConfig {
    /// Stall-rate samples per iteration (`n`).
    pub samples_per_iteration: usize,
    /// Samples discarded at each end after sorting (`c`).
    pub trim: usize,
    /// Seconds between samples (`t`) — the driver's sampling cadence.
    pub sample_interval_s: f64,
    /// DWP increment per iteration (`x`).
    pub step: f64,
    /// Minimum relative stall-rate improvement to keep climbing (guards
    /// against stopping decisions on measurement noise).
    pub min_improvement: f64,
    /// Stage-1 threshold of the co-scheduled variant: the high-priority
    /// application counts as still improving only above this relative
    /// margin. It is deliberately coarser than `min_improvement` — A is
    /// barely memory-bound, so tiny relative wobbles of its small stall
    /// rate must read as "stabilized" (paper §III-B3).
    pub stage1_min_improvement: f64,
}

impl Default for DwpTunerConfig {
    fn default() -> Self {
        DwpTunerConfig {
            samples_per_iteration: 20,
            trim: 5,
            sample_interval_s: 0.2,
            step: 0.10,
            min_improvement: 0.002,
            stage1_min_improvement: 0.02,
        }
    }
}

/// What the driver should do after feeding a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum TunerAction {
    /// Keep sampling at the current placement.
    Continue,
    /// Migrate to the given weights (DWP was raised), then keep sampling.
    Apply {
        /// The new DWP value.
        dwp: f64,
        /// The weight distribution realizing it.
        weights: WeightDistribution,
    },
    /// Search over: stay at the current placement.
    Finished,
}

/// Online DWP search. The tuner is a passive state machine: a driver (the
/// BWAP daemon in `bwap-runtime`, or a real libnuma agent) feeds it one
/// stall-rate measurement per `sample_interval_s` and executes the
/// placements it requests. Because `mbind` cannot migrate pages *back*
/// toward the canonical spread without remapping (paper §III-B2), the
/// search is monotone: it climbs while stalls improve and stops — at most
/// one step past the optimum — when they do not (the paper reports the
/// same <= 1-step error margin, Fig. 4).
#[derive(Debug, Clone)]
pub struct DwpTuner {
    cfg: DwpTunerConfig,
    canonical: WeightDistribution,
    workers: NodeSet,
    sampler: TrimmedSampler,
    dwp: f64,
    prev_stall: Option<f64>,
    finished: bool,
    history: Vec<(f64, f64)>,
}

impl DwpTuner {
    /// Start a search from `dwp = 0` (the canonical placement).
    pub fn new(
        canonical: WeightDistribution,
        workers: NodeSet,
        cfg: DwpTunerConfig,
    ) -> Result<Self, BwapError> {
        if !(cfg.step > 0.0 && cfg.step <= 1.0) {
            return Err(BwapError::InvalidConfig(format!("step {}", cfg.step)));
        }
        let sampler = TrimmedSampler::new(cfg.samples_per_iteration, cfg.trim)?;
        // Validate the pair early.
        apply_dwp(&canonical, workers, 0.0)?;
        Ok(DwpTuner {
            cfg,
            canonical,
            workers,
            sampler,
            dwp: 0.0,
            prev_stall: None,
            finished: false,
            history: Vec::new(),
        })
    }

    /// The placement to install before sampling starts (DWP = 0).
    pub fn initial_weights(&self) -> WeightDistribution {
        apply_dwp(&self.canonical, self.workers, 0.0).expect("validated at construction")
    }

    /// Current DWP.
    pub fn dwp(&self) -> f64 {
        self.dwp
    }

    /// Whether the search ended.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// `(dwp, trimmed stall rate)` per completed iteration.
    pub fn history(&self) -> &[(f64, f64)] {
        &self.history
    }

    /// Sampling cadence the driver must honour.
    pub fn sample_interval(&self) -> f64 {
        self.cfg.sample_interval_s
    }

    /// Feed one stall-rate measurement.
    pub fn on_sample(&mut self, stall_rate: f64) -> TunerAction {
        if self.finished {
            return TunerAction::Finished;
        }
        let Some(mean) = self.sampler.push(stall_rate) else {
            return TunerAction::Continue;
        };
        self.history.push((self.dwp, mean));
        let climb = match self.prev_stall {
            None => true, // baseline window at DWP = 0: always try one step
            Some(prev) => mean < prev * (1.0 - self.cfg.min_improvement),
        };
        self.prev_stall = Some(mean);
        if !climb {
            self.finished = true;
            return TunerAction::Finished;
        }
        self.raise()
    }

    fn raise(&mut self) -> TunerAction {
        if self.dwp >= 1.0 - 1e-9 {
            self.finished = true;
            return TunerAction::Finished;
        }
        self.dwp = (self.dwp + self.cfg.step).min(1.0);
        let weights = apply_dwp(&self.canonical, self.workers, self.dwp).expect("dwp in range");
        TunerAction::Apply { dwp: self.dwp, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::NodeId;

    fn canonical() -> WeightDistribution {
        WeightDistribution::from_raw(vec![3.0, 3.0, 2.0, 2.0]).unwrap()
    }

    fn workers() -> NodeSet {
        NodeSet::from_nodes([NodeId(0), NodeId(1)])
    }

    #[test]
    fn dwp_zero_is_canonical_one_is_workers_only() {
        let c = canonical();
        let w0 = apply_dwp(&c, workers(), 0.0).unwrap();
        assert!(w0.max_abs_diff(&c) < 1e-12);
        let w1 = apply_dwp(&c, workers(), 1.0).unwrap();
        assert_eq!(w1.as_slice(), &[0.5, 0.5, 0.0, 0.0]);
    }

    #[test]
    fn dwp_preserves_within_set_ratios() {
        let c = WeightDistribution::from_raw(vec![4.0, 2.0, 3.0, 1.0]).unwrap();
        let w = apply_dwp(&c, workers(), 0.5).unwrap();
        // worker ratio 4:2 preserved
        assert!((w.get(NodeId(0)) / w.get(NodeId(1)) - 2.0).abs() < 1e-9);
        // non-worker ratio 3:1 preserved
        assert!((w.get(NodeId(2)) / w.get(NodeId(3)) - 3.0).abs() < 1e-9);
        // worker mass interpolates: A0 = 0.6 -> A(0.5) = 0.8
        assert!((w.mass(workers()) - 0.8).abs() < 1e-9);
        assert!(w.is_normalized());
    }

    #[test]
    fn dwp_monotone_in_worker_mass() {
        let c = canonical();
        let mut prev = 0.0;
        for i in 0..=10 {
            let d = i as f64 / 10.0;
            let mass = apply_dwp(&c, workers(), d).unwrap().mass(workers());
            assert!(mass >= prev - 1e-12, "mass not monotone at {d}");
            prev = mass;
        }
    }

    #[test]
    fn invalid_dwp_rejected() {
        let c = canonical();
        assert!(apply_dwp(&c, workers(), -0.1).is_err());
        assert!(apply_dwp(&c, workers(), 1.1).is_err());
        assert!(apply_dwp(&c, NodeSet::EMPTY, 0.5).is_err());
    }

    fn quick_cfg() -> DwpTunerConfig {
        DwpTunerConfig {
            samples_per_iteration: 3,
            trim: 0,
            sample_interval_s: 0.1,
            step: 0.25,
            min_improvement: 0.002,
            stage1_min_improvement: 0.05,
        }
    }

    /// Drive a tuner against a synthetic stall curve `f(dwp)`.
    fn run_curve(f: impl Fn(f64) -> f64) -> (f64, usize) {
        let mut t = DwpTuner::new(canonical(), workers(), quick_cfg()).unwrap();
        let mut applies = 0;
        for _ in 0..1000 {
            match t.on_sample(f(t.dwp())) {
                TunerAction::Continue => {}
                TunerAction::Apply { .. } => applies += 1,
                TunerAction::Finished => break,
            }
        }
        (t.dwp(), applies)
    }

    #[test]
    fn finds_interior_optimum_within_one_step() {
        // Convex stall curve with minimum at DWP = 0.5.
        let (dwp, _) = run_curve(|d| 100.0 + (d - 0.5).powi(2) * 100.0);
        // Stops one step past the optimum at most.
        assert!((dwp - 0.75).abs() < 1e-9, "stopped at {dwp}");
    }

    #[test]
    fn monotone_decreasing_curve_reaches_one() {
        let (dwp, applies) = run_curve(|d| 100.0 - 50.0 * d);
        assert!((dwp - 1.0).abs() < 1e-9);
        assert_eq!(applies, 4); // 0.25, 0.5, 0.75, 1.0
    }

    #[test]
    fn monotone_increasing_curve_stops_after_first_probe() {
        let (dwp, applies) = run_curve(|d| 100.0 + 50.0 * d);
        // Probes one step (cannot know without trying), then stops.
        assert!((dwp - 0.25).abs() < 1e-9);
        assert_eq!(applies, 1);
    }

    #[test]
    fn flat_curve_counts_as_no_improvement() {
        let (dwp, _) = run_curve(|_| 100.0);
        assert!((dwp - 0.25).abs() < 1e-9);
    }

    #[test]
    fn history_records_iterations() {
        let mut t = DwpTuner::new(canonical(), workers(), quick_cfg()).unwrap();
        for _ in 0..6 {
            t.on_sample(100.0);
        }
        assert_eq!(t.history().len(), 2);
        assert_eq!(t.history()[0].0, 0.0);
        assert!((t.history()[0].1 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn finished_tuner_stays_finished() {
        let mut t = DwpTuner::new(canonical(), workers(), quick_cfg()).unwrap();
        for _ in 0..100 {
            t.on_sample(100.0);
        }
        assert!(t.is_finished());
        assert_eq!(t.on_sample(0.0), TunerAction::Finished);
    }

    #[test]
    fn bad_config_rejected() {
        let mut cfg = quick_cfg();
        cfg.step = 0.0;
        assert!(DwpTuner::new(canonical(), workers(), cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.trim = 2; // 3 <= 2*2
        assert!(DwpTuner::new(canonical(), workers(), cfg).is_err());
    }
}
