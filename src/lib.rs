//! # BWAP reproduction suite
//!
//! A from-scratch Rust reproduction of *Bandwidth-Aware Page Placement in
//! NUMA Systems* (Gureya et al., IPDPS 2020): the BWAP weighted-interleave
//! placement pipeline, the simulated NUMA machine/OS substrate it is
//! evaluated on, the paper's benchmark workloads, baselines, and the
//! complete experiment harness.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`topology`] (`bwap-topology`) — machines: nodes, links, routes,
//!   bandwidth matrices; the paper's machines A and B.
//! * [`fabric`] (`bwap-fabric`) — bandwidth contention: weighted
//!   demand-bounded max-min fair allocation over controllers, links, path
//!   caps and core ingress.
//! * [`sim`] (`numasim`) — the simulated OS: memory policies, `mbind`,
//!   page migration, AutoNUMA, performance counters, the epoch engine.
//! * [`workloads`] (`bwap-workloads`) — Table I's benchmark suite as
//!   synthetic workload specifications.
//! * [`core`] (`bwap`) — the paper's contribution: canonical tuner
//!   (Eq. 2/5), DWP tuner (stand-alone + co-scheduled), Algorithm 1.
//! * [`runtime`] (`bwap-runtime`) — glue: profiling, daemons, baseline
//!   policies, scenario runners, and the declarative experiment-campaign
//!   engine (`runtime::campaign`).
//! * [`search`] (`bwap-search`) — the offline N-dimensional hill-climbing
//!   oracle (Fig. 1b).
//!
//! The crate relationships and the data flow from `WorkloadSpec` through
//! the simulator and daemons to campaign reports are documented in
//! `docs/ARCHITECTURE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use bwap_suite::prelude::*;
//!
//! // The paper's 8-node asymmetric machine, and Streamcluster scaled for
//! // a fast doc test.
//! let machine = machines::machine_a();
//! let spec = workloads::streamcluster().scaled_down(32.0);
//! let workers = machine.best_worker_set(2);
//!
//! let uniform = run_coscheduled(&machine, &spec, workers, &PlacementPolicy::UniformWorkers)
//!     .unwrap();
//! let bwap = run_coscheduled(
//!     &machine,
//!     &spec,
//!     workers,
//!     &PlacementPolicy::Bwap(BwapConfig::default()),
//! )
//! .unwrap();
//! assert!(bwap.exec_time_s < uniform.exec_time_s);
//! ```

pub use bwap as core;
pub use bwap_fabric as fabric;
pub use bwap_runtime as runtime;
pub use bwap_search as search;
pub use bwap_topology as topology;
pub use bwap_workloads as workloads;
pub use numasim as sim;

/// The commonly-needed surface in one import.
pub mod prelude {
    pub use bwap::{
        apply_dwp, canonical_weights, user_level_plan, BwapConfig, DwpTuner, DwpTunerConfig,
        InterleaveMode, WeightDistribution,
    };
    pub use bwap_runtime::{
        poisson_jobs, run_campaign, run_campaign_with, run_coscheduled, run_coscheduled_phased,
        run_fleet, run_standalone, run_standalone_phased, run_standalone_traced,
        sweep_worker_counts, AdaptiveBwapDaemon, AdaptiveConfig, BwapDaemon, CampaignConfig,
        CampaignReport, CampaignSpec, CoschedDaemon, DwpPoint, FleetAxis, FleetConfig, FleetJob,
        FleetOutcome, MachineKind, PlacementPolicy, ProfileBook, RunResult, ScenarioKind,
        SchedulerKind,
    };
    pub use bwap_topology::{
        machines, MachineTopology, NodeId, NodeSet, NodeSpec, TopologyBuilder,
    };
    pub use bwap_workloads as workloads;
    pub use numasim::{AppProfile, MemPolicy, SimConfig, Simulator, TraceSink};
}
