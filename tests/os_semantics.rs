//! Cross-crate OS semantics: policies, `mbind`, migration and counters
//! behave like the Linux facilities they model.

use bwap_suite::prelude::*;
use bwap_suite::sim::SegmentId;

fn small_app(shared_pages: u64) -> AppProfile {
    AppProfile {
        name: "app".into(),
        read_gbps_per_thread: 1.0,
        write_gbps_per_thread: 0.2,
        private_frac: 0.3,
        latency_sensitivity: 0.2,
        serial_frac: 0.0,
        multinode_penalty: 0.0,
        shared_pages,
        private_pages_per_thread: 64,
        total_traffic_gb: f64::INFINITY,
        open_loop: false,
    }
}

#[test]
fn numactl_style_launch_policies() {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let workers = NodeSet::from_nodes([NodeId(1), NodeId(2)]);

    // interleave=all applies to every segment, like numactl.
    let pid =
        sim.spawn(small_app(8000), workers, None, MemPolicy::Interleave(m.all_nodes())).unwrap();
    let d = sim.full_distribution(pid).unwrap();
    for (i, &f) in d.iter().enumerate() {
        assert!((f - 0.25).abs() < 0.01, "node {i}: {d:?}");
    }
}

#[test]
fn mbind_strict_move_converges_and_counts() {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let pid = sim
        .spawn(small_app(10_000), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
        .unwrap();
    let seg = sim.process(pid).unwrap().shared_seg;
    // Rebind half the segment to node 3.
    let queued = sim.mbind(pid, seg, 0, 5_000, MemPolicy::Bind(NodeId(3)), true).unwrap();
    assert_eq!(queued, 5_000);
    sim.run_for(1.0);
    let d = sim.shared_distribution(pid).unwrap();
    assert!((d[3] - 0.5).abs() < 1e-9, "{d:?}");
    assert!((d[0] - 0.5).abs() < 1e-9, "{d:?}");
    assert_eq!(sim.migrated_pages(pid), 5_000);
    // Counters saw the migration traffic: node 3 absorbed ~5000 pages of
    // writes.
    let written = sim.counters().node_write_bytes(3);
    assert!(written >= 5_000.0 * 4096.0, "written {written}");
}

#[test]
fn overlapping_mbinds_keep_page_accounting_consistent() {
    // Re-binding a range while earlier moves are still queued must not
    // corrupt frame accounting (regression test for the stale-move bug).
    let m = machines::machine_b();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let pid = sim
        .spawn(small_app(20_000), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
        .unwrap();
    let seg = sim.process(pid).unwrap().shared_seg;
    sim.mbind(pid, seg, 0, 20_000, MemPolicy::Bind(NodeId(1)), true).unwrap();
    sim.step(); // partially drained
    sim.mbind(pid, seg, 0, 20_000, MemPolicy::Bind(NodeId(2)), true).unwrap();
    sim.step();
    sim.mbind(pid, seg, 0, 20_000, MemPolicy::Interleave(m.all_nodes()), true).unwrap();
    sim.run_for(2.0);
    let counts: u64 = {
        let p = sim.process(pid).unwrap();
        p.aspace.segment(seg).unwrap().node_counts().iter().sum()
    };
    assert_eq!(counts, 20_000, "pages conserved");
    // The last mbind wins: the final placement is the uniform interleave,
    // not a mix of the superseded binds.
    let d = sim.shared_distribution(pid).unwrap();
    for (i, &f) in d.iter().enumerate() {
        assert!((f - 0.25).abs() < 0.01, "node {i}: {d:?}");
    }
}

#[test]
fn weighted_interleave_policy_is_exact_at_spawn() {
    let m = machines::machine_a();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let weights = vec![0.30, 0.20, 0.10, 0.10, 0.10, 0.10, 0.05, 0.05];
    let pid = sim
        .spawn(
            small_app(20_000),
            NodeSet::single(NodeId(0)),
            None,
            MemPolicy::WeightedInterleave(weights.clone()),
        )
        .unwrap();
    let d = sim.shared_distribution(pid).unwrap();
    for i in 0..8 {
        assert!((d[i] - weights[i]).abs() < 1e-3, "node {i}: {d:?}");
    }
}

#[test]
fn stall_counters_track_contention() {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let mut hungry = small_app(8000);
    hungry.read_gbps_per_thread = 8.0; // 56 GB/s per node: saturates
    let pid = sim.spawn(hungry, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
    let s0 = sim.sample(pid).unwrap();
    sim.run_for(1.0);
    let s1 = sim.sample(pid).unwrap();
    let stall_frac = (s1.stall_cycles - s0.stall_cycles) / (s1.cycles - s0.cycles);
    assert!(stall_frac > 0.4, "saturated workload should stall hard: {stall_frac}");
    let throughput = s1.throughput_since(&s0);
    // Achieved throughput is bounded by the controller.
    assert!(throughput < 29e9, "throughput {throughput}");
    assert!(throughput > 20e9, "throughput {throughput}");
}

#[test]
fn segment_ranges_validated() {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m, SimConfig::default());
    let pid =
        sim.spawn(small_app(100), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
    let seg = sim.process(pid).unwrap().shared_seg;
    assert!(sim.mbind(pid, seg, 50, 100, MemPolicy::Bind(NodeId(1)), true).is_err());
    assert!(sim.mbind(pid, SegmentId(999), 0, 10, MemPolicy::Bind(NodeId(1)), true).is_err());
    // invalid weights rejected
    assert!(sim.mbind(pid, seg, 0, 10, MemPolicy::WeightedInterleave(vec![0.5; 3]), true).is_err());
}
