//! Fleet-layer guarantees: the open-loop serving campaign (`fig_fleet`)
//! must be deterministic across reruns, executor shard counts and time
//! engines; a degenerate one-machine fleet must reproduce the
//! co-scheduled scenario bit-for-bit; and every fleet cell must carry
//! the slowdown-vs-solo tail metrics `docs/FLEET.md` promises.

use bwap_bench::experiments::fig_fleet_spec;
use bwap_suite::prelude::*;
use numasim::EngineMode;

/// Rerun and shard-count invariance: the fleet axis inherits the
/// campaign engine's determinism contract.
#[test]
fn fig_fleet_quick_is_deterministic_across_reruns_and_shards() {
    let spec = fig_fleet_spec(true);
    let a = run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
    let b = run_campaign_with(&spec, &CampaignConfig { threads: Some(8), ..Default::default() });
    let c = run_campaign(&spec);
    assert!(!a.cells.is_empty());
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.deterministic_json(), c.deterministic_json());
}

/// Both time engines produce the same deterministic report, byte for
/// byte — arrivals and departures are exactly the events the
/// event-driven engine's strides must not skip.
#[test]
fn fig_fleet_quick_is_engine_mode_invariant() {
    let stepped = run_campaign(&fig_fleet_spec(true).engine_mode(EngineMode::Stepped));
    let event = run_campaign(&fig_fleet_spec(true).engine_mode(EngineMode::EventDriven));
    assert_eq!(stepped.deterministic_json(), event.deterministic_json());
}

/// Every fleet cell reports the tail metrics, they are internally
/// consistent (sorted percentiles, slowdowns >= 1 within tolerance) and
/// machine-local cells stay free of them.
#[test]
fn fleet_cells_report_tail_metrics() {
    let spec = fig_fleet_spec(true);
    let report = run_campaign(&spec);
    let axis = spec.fleet.as_ref().expect("fig_fleet has a fleet axis");
    let fleet: Vec<_> = report.cells.iter().filter(|c| c.scheduler.is_some()).collect();
    assert_eq!(fleet.len(), axis.schedulers.len() * axis.arrival_rates.len());
    for c in &fleet {
        assert_eq!(c.workload, "mix");
        assert_eq!(c.scenario, ScenarioKind::Fleet);
        let r = c.outcome.as_ref().unwrap_or_else(|e| panic!("{}: {e}", c.key));
        assert_eq!(r.jobs, Some(axis.jobs as u64));
        let slowdowns = r.job_slowdowns.as_ref().expect("completed jobs carry samples");
        assert_eq!(slowdowns.len(), axis.jobs);
        for s in slowdowns {
            // Scheduling may only delay a job relative to its solo run
            // (modulo float dust from clock interpolation).
            assert!(*s >= 1.0 - 1e-9, "slowdown {s} below solo");
        }
        let (p50, p95, p99) = (
            r.slowdown_p50.expect("p50"),
            r.slowdown_p95.expect("p95"),
            r.slowdown_p99.expect("p99"),
        );
        assert!(p50 <= p95 && p95 <= p99, "percentiles ordered: {p50} {p95} {p99}");
        // Makespan rides in exec_time_s and covers the whole stream.
        assert!(r.exec_time_s > 0.0);
    }
    for c in report.cells.iter().filter(|c| c.scheduler.is_none()) {
        let r = c.outcome.as_ref().unwrap();
        assert_eq!(r.jobs, None, "fleet fields stay off machine-local cells");
        assert_eq!(c.arrival_rate_hz, None);
    }
}

/// A one-machine fleet running exactly the co-scheduled scenario's two
/// jobs — Swaptions on the complement under first-touch, the measured
/// app on its workers — reproduces `run_coscheduled`'s execution time
/// bit-for-bit. The fleet layer is a strict generalization, not a
/// reimplementation with different physics.
#[test]
fn degenerate_one_machine_fleet_matches_coscheduled_bit_for_bit() {
    let m = machines::machine_b();
    let app = workloads::streamcluster().scaled_down(32.0);
    let workers = m.best_worker_set(1);
    let workers_a = m.worker_nodes().difference(workers);

    let cosched = run_coscheduled(&m, &app, workers, &PlacementPolicy::UniformWorkers)
        .expect("co-scheduled reference");

    let jobs = vec![
        FleetJob {
            at_s: 0.0,
            workload: workloads::swaptions(),
            // The co-scheduled scenario stops simulating once B finishes
            // and never waits for Swaptions; the fleet drains every job,
            // so force Swaptions out long after B is done — departures
            // after B's completion cannot touch B's counters.
            depart_s: Some(300.0),
            workers: Some(workers_a),
            policy: Some(PlacementPolicy::FirstTouch),
        },
        FleetJob {
            at_s: 0.0,
            workload: app.clone(),
            depart_s: None,
            workers: Some(workers),
            policy: Some(PlacementPolicy::UniformWorkers),
        },
    ];
    let cfg = FleetConfig {
        machines: vec![m.clone()],
        scheduler: SchedulerKind::RoundRobin,
        policy: PlacementPolicy::UniformWorkers,
        workers: 1,
        sim_cfg: SimConfig::default(),
    };
    let out = run_fleet(&cfg, &jobs, None).expect("fleet run");
    assert_eq!(out.jobs.len(), 2);
    let b = &out.jobs[1];
    assert_eq!(b.workload, app.name);
    assert_eq!(
        b.exec_time_s.to_bits(),
        cosched.exec_time_s.to_bits(),
        "degenerate fleet diverged from the co-scheduled scenario: {} vs {}",
        b.exec_time_s,
        cosched.exec_time_s
    );
}

/// The Poisson stream is a pure function of the seed: same seed, same
/// schedule; different seeds, different schedules; and the campaign's
/// fleet descriptors resolve the schedule so cache keys can never
/// collide across seeds.
#[test]
fn poisson_arrivals_are_seeded_and_reproducible() {
    let catalog =
        vec![workloads::streamcluster().scaled_down(64.0), workloads::ocean_cp().scaled_down(64.0)];
    let a = poisson_jobs(42, 2.0, 8, &catalog);
    let b = poisson_jobs(42, 2.0, 8, &catalog);
    assert_eq!(a.len(), 8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.at_s.to_bits(), y.at_s.to_bits());
        assert_eq!(x.workload.name, y.workload.name);
    }
    let c = poisson_jobs(43, 2.0, 8, &catalog);
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.at_s.to_bits() != y.at_s.to_bits()),
        "different seeds draw different schedules"
    );
}
