//! Integration tests for content-addressed campaign memoization: golden
//! byte-identity with dedup on/off and cache cold/warm, kill-and-resume
//! (a partially populated cache completes to the exact same bytes), and
//! corrupt-cache tolerance.

use bwap_bench::experiments::{dwp_dedup_spec, fig4_spec};
use bwap_runtime::{run_campaign_with, CampaignConfig, CampaignSpec};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bwap-memo-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn det(spec: &CampaignSpec, cfg: &CampaignConfig) -> String {
    run_campaign_with(spec, cfg).deterministic_json()
}

/// The report the rest of the suite sees is invariant under every
/// execution strategy: dedup on (default), dedup off, cold cache, warm
/// cache. `fig4_quick` is a real paper campaign with a genuine overlap
/// axis (the online point repeats nothing, but the static grid re-runs
/// the same tuner-off config at each point for two worker counts).
#[test]
fn fig4_reports_are_invariant_under_dedup_and_cache() {
    let spec = fig4_spec(true);
    let baseline = det(&spec, &CampaignConfig { dedup: false, ..Default::default() });
    assert_eq!(baseline, det(&spec, &CampaignConfig::default()), "dedup on == dedup off");

    let cache_dir = tmp("fig4");
    let cached = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    assert_eq!(baseline, det(&spec, &cached), "cold cache run");
    let warm = run_campaign_with(&spec, &cached);
    assert_eq!(warm.executed_cells, 0, "warm rerun executes nothing");
    assert!(warm.cells.iter().all(|c| c.cache_hit));
    assert_eq!(baseline, warm.deterministic_json(), "warm cache run");
    let _ = std::fs::remove_dir_all(cache_dir);
}

/// Kill-and-resume: interrupt a campaign (simulated by deleting a subset
/// of its cache entries — exactly the state after a mid-run kill, which
/// only persists completed cells), then resume. The resumed campaign
/// executes only the missing classes and its report is byte-identical.
#[test]
fn killed_campaign_resumes_to_byte_identical_report() {
    let spec = dwp_dedup_spec(true);
    let cache_dir = tmp("resume");
    let cfg = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };

    let full = run_campaign_with(&spec, &cfg);
    assert!(full.executed_cells > 0);
    let reference = full.deterministic_json();

    // "Kill" the first run after some cells completed: drop every other
    // stored entry.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), full.executed_cells, "one entry per executed class");
    let removed: Vec<&PathBuf> = entries.iter().step_by(2).collect();
    for path in &removed {
        std::fs::remove_file(path).expect("simulate lost entry");
    }

    let resumed = run_campaign_with(&spec, &cfg);
    assert_eq!(
        resumed.executed_cells,
        removed.len(),
        "resume executes exactly the missing classes"
    );
    assert_eq!(reference, resumed.deterministic_json(), "resumed report is byte-identical");
    let _ = std::fs::remove_dir_all(cache_dir);
}

/// Cache corruption (torn writes, stray files, version skew) silently
/// degrades to re-execution — never to a wrong or failing report.
#[test]
fn corrupt_cache_entries_degrade_to_reexecution() {
    let spec = dwp_dedup_spec(true);
    let cache_dir = tmp("corrupt");
    let cfg = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    let reference = det(&spec, &cfg);

    for (i, entry) in std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .enumerate()
    {
        match i % 3 {
            0 => std::fs::write(&entry, "garbage, not an entry").expect("corrupt"),
            1 => {
                let text = std::fs::read_to_string(&entry).expect("entry");
                std::fs::write(&entry, &text[..text.len() / 3]).expect("truncate");
            }
            _ => {} // leave valid
        }
    }

    let recovered = run_campaign_with(&spec, &cfg);
    assert!(recovered.executed_cells > 0, "corrupt entries must re-execute");
    assert!(recovered.cells.iter().all(|c| c.outcome.is_ok()));
    assert_eq!(reference, recovered.deterministic_json());
    let _ = std::fs::remove_dir_all(cache_dir);
}

/// The dedup sweep collapses the `dwp_dedup` campaign's 24 declared cells
/// onto 12 distinct simulations, and a dedup-off run of the same spec
/// executes all 24 — with identical reported results.
#[test]
fn dedup_halves_the_dwp_dedup_campaign() {
    let spec = dwp_dedup_spec(true);
    let on = run_campaign_with(&spec, &CampaignConfig::default());
    let off = run_campaign_with(&spec, &CampaignConfig { dedup: false, ..Default::default() });
    assert_eq!(on.cells.len(), 24);
    assert_eq!(on.executed_cells, 12, "exact dedup finds the 12 equivalence classes");
    assert_eq!(off.executed_cells, 24, "dedup off executes every declared cell");
    assert!(
        on.cells.iter().filter(|c| c.dedup_class.is_some()).count() >= 12 * 2 - 1,
        "shared classes carry provenance"
    );
    assert_eq!(on.deterministic_json(), off.deterministic_json());
}
