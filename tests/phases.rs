//! End-to-end phase-structured scenario: the `fig_phases` campaign on
//! machine B, from the phased workload timeline through the engine's
//! epoch-boundary profile swaps and the adaptive watchdog to the
//! versioned report.
//!
//! Pins the tentpole acceptance criterion — on the phase-flipping
//! workloads, adaptive BWAP beats one-shot ("static") BWAP, which beats
//! first-touch, with at least one re-tune recorded in the report — and
//! the determinism contract: a phase switch at epoch *k* lands at the
//! same epoch in every run, so reports are byte-identical across runs
//! and shard counts.

use bwap_bench::experiments::fig_phases_spec;
use bwap_suite::prelude::*;

fn exec_time(report: &CampaignReport, workload: &str, policy: &str) -> f64 {
    report
        .find(workload, policy, ScenarioKind::Standalone, 1, None)
        .unwrap_or_else(|| panic!("no {workload}/{policy} cell"))
        .result()
        .unwrap_or_else(|| panic!("{workload}/{policy} cell failed"))
        .exec_time_s
}

/// The headline: across both phase-flipping workloads, the adaptive
/// daemon's re-tuning beats the placement any one-shot tuner freezes,
/// which in turn beats the Linux default — with the watchdog's activity
/// recorded in the report.
#[test]
fn adaptive_beats_static_beats_first_touch_on_phase_flips() {
    let spec = fig_phases_spec(true);
    let report = run_campaign(&spec);
    for c in &report.cells {
        assert!(c.outcome.is_ok(), "{}: {:?}", c.key, c.outcome);
    }
    for w in ["SC.FLIP", "OC.SWING"] {
        let ft = exec_time(&report, w, "first-touch");
        let stat = exec_time(&report, w, "bwap");
        let adapt = exec_time(&report, w, "bwap-adaptive");
        assert!(adapt < stat, "{w}: adaptive {adapt} should beat static bwap {stat}");
        assert!(stat < ft, "{w}: static bwap {stat} should beat first-touch {ft}");

        let cell = report
            .find(w, "bwap-adaptive", ScenarioKind::Standalone, 1, None)
            .and_then(|c| c.result())
            .expect("adaptive cell ran");
        let retunes = cell.retunes.expect("adaptive cells report retunes");
        assert!(retunes >= 1, "{w}: the watchdog re-tuned at least once");
        let times = cell.retune_times_s.as_ref().expect("timestamps ride along");
        assert_eq!(times.len(), retunes as usize);
        assert!(times.windows(2).all(|p| p[0] < p[1]), "timestamps ordered: {times:?}");
        assert!(cell.phase_switches.expect("phased cells count switches") >= 2);

        // Non-adaptive cells carry no adaptive observables.
        let stat_cell = report
            .find(w, "bwap", ScenarioKind::Standalone, 1, None)
            .and_then(|c| c.result())
            .expect("static cell ran");
        assert_eq!(stat_cell.retunes, None);
    }
    // The v2 report surfaces the new fields.
    let json = report.deterministic_json();
    assert!(json.contains("\"retunes\""));
    assert!(json.contains("\"retune_times_s\""));
    assert!(json.contains("\"phase_switches\""));
    assert!(json.contains("\"phase_period_s\""));
}

fn small_phased_spec() -> CampaignSpec {
    CampaignSpec::new("phases-determinism", machines::machine_b())
        .phased_workloads(vec![workloads::sc_bandwidth_flip().scaled_down(64.0)])
        .phase_periods(vec![2.0])
        .policies(vec![
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default()),
        ])
        .seed(17)
}

/// Phase switches happen at epoch boundaries driven only by the simulated
/// clock, so two runs of the same spec — at any shard count — produce
/// byte-identical deterministic payloads (switch counts, re-tune
/// timestamps and all).
#[test]
fn phase_switches_are_deterministic_across_runs_and_shards() {
    let spec = small_phased_spec();
    let one = run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
    let four = run_campaign_with(&spec, &CampaignConfig { threads: Some(4), ..Default::default() });
    let again =
        run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
    assert_eq!(one.deterministic_json(), four.deterministic_json(), "shard-count invariance");
    assert_eq!(one.deterministic_json(), again.deterministic_json(), "run-to-run determinism");
    // The runs actually switched phases (the property is not vacuous).
    let r = one.cells[0].result().expect("cell ran");
    assert!(r.phase_switches.unwrap() >= 2, "switches: {:?}", r.phase_switches);
}
