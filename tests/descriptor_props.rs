//! Property tests for the content-addressed cell descriptor: injectivity
//! across every campaign axis (perturbing any axis changes the
//! descriptor), seed-normalization (per-cell seeds that no policy reads
//! do *not* change it), and the soundness invariant exact memoization
//! rests on — equal descriptors produce byte-identical outcomes.

use bwap::BwapConfig;
use bwap_runtime::campaign::cache::encode_entry;
use bwap_runtime::{
    cell_descriptor, run_cell_for, CampaignSpec, DwpPoint, EngineMode, PlacementPolicy,
    ScenarioKind,
};
use bwap_topology::machines;
use proptest::prelude::*;

/// One fully-specified single-cell campaign coordinate.
#[derive(Debug, Clone, PartialEq)]
struct Coord {
    machine: usize,
    workload: usize,
    policy: usize,
    scenario: usize,
    workers: usize,
    dwp: usize,
    engine: usize,
    seed: u64,
}

const MACHINES: usize = 3;
const WORKLOADS: usize = 2;
const POLICIES: usize = 5;
const SCENARIOS: usize = 2;
const DWPS: usize = 4; // online, 0.0, 0.5, 1.0
const ENGINES: usize = 2;

fn policy(i: usize) -> PlacementPolicy {
    match i {
        0 => PlacementPolicy::FirstTouch,
        1 => PlacementPolicy::UniformWorkers,
        2 => PlacementPolicy::UniformAll,
        3 => PlacementPolicy::Bwap(BwapConfig::default()),
        _ => PlacementPolicy::Bwap(BwapConfig::static_dwp(0.3)),
    }
}

fn dwp(i: usize) -> DwpPoint {
    match i {
        0 => DwpPoint::AsConfigured,
        1 => DwpPoint::Static(0.0),
        2 => DwpPoint::Static(0.5),
        _ => DwpPoint::Static(1.0),
    }
}

fn spec_for(c: &Coord) -> CampaignSpec {
    let machine = match c.machine {
        0 => machines::machine_a(),
        1 => machines::machine_b(),
        _ => machines::machine_tiered(),
    };
    let workload = match c.workload {
        0 => bwap_workloads::streamcluster().scaled_down(32.0),
        _ => bwap_workloads::ocean_cp().scaled_down(32.0),
    };
    let scenario =
        if c.scenario == 0 { ScenarioKind::Standalone } else { ScenarioKind::Coscheduled };
    let engine = if c.engine == 0 { EngineMode::Stepped } else { EngineMode::EventDriven };
    CampaignSpec::new("prop", machine)
        .workloads(vec![workload])
        .policies(vec![policy(c.policy)])
        .scenarios(vec![scenario])
        .worker_counts(vec![c.workers])
        .dwp_grid(vec![dwp(c.dwp)])
        .seed(c.seed)
        .engine_mode(engine)
}

/// The descriptor of a coordinate's single cell, if the coordinate
/// enumerates one (static-DWP points apply only to BWAP policies).
fn descriptor_of(c: &Coord) -> Option<String> {
    let spec = spec_for(c);
    let cells = spec.cells();
    cells.first().map(|cell| cell_descriptor(&spec, cell).text().to_string())
}

fn coord() -> impl Strategy<Value = Coord> {
    (
        0..MACHINES,
        0..WORKLOADS,
        0..POLICIES,
        0..SCENARIOS,
        1..=2usize,
        0..DWPS,
        0..ENGINES,
        0u64..1000,
    )
        .prop_map(|(machine, workload, policy, scenario, workers, dwp, engine, seed)| Coord {
            machine,
            workload,
            policy,
            scenario,
            workers,
            dwp,
            engine,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Perturbing any single campaign axis changes the descriptor —
    /// distinct simulations can never share a cache entry. (The DWP axis
    /// is perturbed within the static range so the known, *intentional*
    /// fold `bwap x Static(d)` == `static_dwp(d) x online` stays out of
    /// the picture; the fold itself is pinned in a separate test.)
    #[test]
    fn perturbing_any_axis_changes_the_descriptor(c in coord(), axis in 0..6usize) {
        let mut p = c.clone();
        match axis {
            0 => p.machine = (c.machine + 1) % MACHINES,
            1 => p.workload = (c.workload + 1) % WORKLOADS,
            2 => p.scenario = (c.scenario + 1) % SCENARIOS,
            3 => p.workers = if c.workers == 1 { 2 } else { 1 },
            4 => p.engine = (c.engine + 1) % ENGINES,
            // Static DWP value flip, BWAP policies only (other policies
            // don't enumerate static points).
            _ => {
                p.policy = 3;
                p.dwp = if c.dwp <= 1 { 2 } else { 1 };
                if p == c { p.dwp = 3; }
            }
        }
        let (Some(a), Some(b)) = (descriptor_of(&c), descriptor_of(&p)) else {
            // Coordinate enumerated no cell (static DWP on a non-BWAP
            // policy): nothing to compare.
            return Ok(());
        };
        // (axis {axis} perturbation must change the descriptor)
        prop_assert_ne!(a, b);
    }

    /// Campaign seeds are normalized out: every shipped policy is
    /// deterministic (none reads `BwapConfig::seed`), so two campaigns
    /// differing only in seed share every cell — and the cache.
    #[test]
    fn seed_does_not_change_the_descriptor(c in coord(), other_seed in 1000u64..2000) {
        let mut p = c.clone();
        p.seed = other_seed;
        prop_assert_eq!(descriptor_of(&c), descriptor_of(&p));
    }

    /// Distinct policy indices map to distinct descriptors, *except* the
    /// documented fold: a pre-fixed static-DWP BWAP config equals the
    /// default BWAP config at the matching static grid point.
    #[test]
    fn policies_are_distinguished(c in coord(), pa in 0..POLICIES, pb in 0..POLICIES) {
        let mut a = c.clone();
        a.policy = pa;
        a.dwp = 0;
        let mut b = c.clone();
        b.policy = pb;
        b.dwp = 0;
        let (da, db) = (descriptor_of(&a).unwrap(), descriptor_of(&b).unwrap());
        if pa == pb {
            prop_assert_eq!(da, db);
        } else {
            prop_assert_ne!(da, db);
        }
    }
}

proptest! {
    // Execution-backed cases are expensive; a few random coordinates per
    // run still cover the product space over CI history.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The soundness contract of exact memoization: equal descriptors
    /// imply byte-identical outcomes. Exercised through the intentional
    /// equivalence (default BWAP at a static grid point vs a pre-fixed
    /// static config run as-configured) — two *different* declared cells
    /// whose descriptors coincide, run independently, must produce
    /// bit-identical results.
    #[test]
    fn equal_descriptors_imply_byte_identical_outcomes(
        machine in 0..2usize, // symmetric machines: both scenarios valid everywhere
        scenario in 0..SCENARIOS,
        di in 0..4usize,
    ) {
        let d = [0.0f64, 0.25, 0.5, 1.0][di];
        let base = Coord {
            machine, workload: 0, policy: 3, scenario, workers: 1, dwp: 0, engine: 0, seed: 7,
        };
        let grid_spec = spec_for(&base).dwp_grid(vec![DwpPoint::Static(d)]);
        let fixed_spec = spec_for(&base)
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::static_dwp(d))])
            .dwp_grid(vec![DwpPoint::AsConfigured]);
        let (gc, fc) = (grid_spec.cells(), fixed_spec.cells());
        prop_assert_eq!(gc.len(), 1);
        prop_assert_eq!(fc.len(), 1);
        let gd = cell_descriptor(&grid_spec, &gc[0]);
        let fd = cell_descriptor(&fixed_spec, &fc[0]);
        prop_assert_eq!(gd.text(), fd.text(), "the fold must produce equal descriptors");
        let g = run_cell_for(&grid_spec, &gc[0]).map_err(|e| e.to_string());
        let f = run_cell_for(&fixed_spec, &fc[0]).map_err(|e| e.to_string());
        // Bit-exact comparison via the cache encoding (floats as bits).
        prop_assert_eq!(encode_entry(&gd, &g), encode_entry(&fd, &f));
    }
}
