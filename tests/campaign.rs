//! Campaign-engine guarantees the rest of the suite builds on:
//! determinism, shard-count invariance, and edge cases. These pin the
//! properties `docs/RESULTS_SCHEMA.md` promises for report artifacts.

use bwap_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_spec() -> CampaignSpec {
    CampaignSpec::new("itest", machines::machine_b())
        .workloads(vec![
            workloads::streamcluster().scaled_down(32.0),
            workloads::ocean_cp().scaled_down(32.0),
        ])
        .policies(vec![
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::Bwap(BwapConfig::default()),
        ])
        .scenarios(vec![ScenarioKind::Standalone, ScenarioKind::Coscheduled])
        .worker_counts(vec![1, 2])
        .dwp_grid(vec![DwpPoint::AsConfigured, DwpPoint::Static(0.4)])
        .seed(2026)
}

/// Same spec + same seed => byte-identical report, modulo the volatile
/// provenance fields (wall time, thread count) that `deterministic_json`
/// omits.
#[test]
fn report_is_deterministic_for_fixed_spec_and_seed() {
    let spec = small_spec();
    let a = run_campaign(&spec);
    let b = run_campaign(&spec);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    // The volatile fields still exist in the full artifact.
    assert!(a.to_json().contains("wall_time_s"));
}

/// One executor thread and many executor threads must produce identical
/// cell results: parallelism is an implementation detail, never an input.
#[test]
fn shard_count_invariance() {
    let spec = small_spec();
    let serial =
        run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
    let wide = run_campaign_with(&spec, &CampaignConfig { threads: Some(8), ..Default::default() });
    assert!(!serial.cells.is_empty());
    assert_eq!(serial.deterministic_json(), wide.deterministic_json());
}

/// A different root seed re-derives every cell seed but, with the paper's
/// deterministic tuner, leaves the physics unchanged.
#[test]
fn root_seed_changes_cell_seeds_only() {
    let a = run_campaign(&small_spec());
    let b = run_campaign(&small_spec().seed(1));
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.key, y.key);
        assert_ne!(x.seed, y.seed);
        let (rx, ry) = (x.result().unwrap(), y.result().unwrap());
        assert_eq!(rx.exec_time_s, ry.exec_time_s);
    }
}

/// An empty matrix (any empty axis) is a valid campaign: zero cells, a
/// well-formed report, no executor work.
#[test]
fn empty_matrix_yields_empty_report() {
    let spec = CampaignSpec::new("empty", machines::machine_b());
    assert!(spec.cells().is_empty());
    let report = run_campaign(&spec);
    assert!(report.cells.is_empty());
    assert!(report.to_json().contains("\"cells\": []"));

    // Empty via a different axis: workloads set, scenarios cleared.
    let report2 = run_campaign(
        &CampaignSpec::new("empty2", machines::machine_b())
            .workloads(vec![workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::FirstTouch])
            .scenarios(vec![]),
    );
    assert!(report2.cells.is_empty());
}

/// Campaigns compose with the seeded workload generator: randomly drawn
/// (but seed-determined) workloads run like any other spec — the
/// scenario-diversity path future PRs build on.
#[test]
fn seeded_random_workload_campaign_is_reproducible() {
    let gen_workloads = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = workloads::generator::GeneratorBounds::default();
        vec![workloads::generator::random_workload(&mut rng, &bounds).scaled_down(32.0)]
    };
    let spec = |seed: u64| {
        CampaignSpec::new("random", machines::machine_b())
            .workloads(gen_workloads(seed))
            .policies(vec![PlacementPolicy::UniformWorkers])
            .seed(seed)
    };
    let a = run_campaign(&spec(9));
    let b = run_campaign(&spec(9));
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert!(a.cells[0].result().unwrap().exec_time_s > 0.0);
}
