//! The markdown documentation cannot rot: every relative link and anchor
//! in `README.md` + `docs/*.md` must resolve, offline. The same check
//! gates CI through the `doc_check` binary; running it under tier-1 makes
//! a broken link fail `cargo test` locally too.

use bwap_bench::doc_check::{check_files, default_doc_set};
use std::path::PathBuf;

#[test]
fn all_doc_links_and_anchors_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = default_doc_set(&root);
    assert!(files.len() >= 5, "doc set unexpectedly small: {files:?}");
    let errors = check_files(&files);
    assert!(
        errors.is_empty(),
        "broken documentation links:\n{}",
        errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
    );
}
