//! End-to-end heterogeneous-tier scenario: a campaign on the
//! CPU-less-expander reference machine, from topology through placement
//! to the versioned report. Pins the refactor's acceptance criterion —
//! BWAP beats first-touch and uniform interleave on a bandwidth-bound
//! workload by exploiting the slow tier's extra bandwidth without
//! over-weighting it.

use bwap_suite::prelude::*;

fn tiered_spec() -> CampaignSpec {
    CampaignSpec::new("tiered-itest", machines::machine_tiered())
        .workloads(vec![workloads::ocean_cp().scaled_down(16.0)])
        .policies(vec![
            PlacementPolicy::FirstTouch,
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::UniformAll,
            PlacementPolicy::Bwap(BwapConfig::default()),
        ])
        .worker_counts(vec![2])
        .seed(11)
}

fn exec_time(report: &CampaignReport, policy: &str) -> f64 {
    report
        .find("OC", policy, ScenarioKind::Standalone, 2, None)
        .expect("cell exists")
        .result()
        .unwrap_or_else(|| panic!("{policy} cell failed"))
        .exec_time_s
}

/// The headline: on a machine with CPU-less expander nodes, BWAP's
/// canonical weights (rectangular memory x worker view) beat the Linux
/// default and both uniform interleaves for a bandwidth-bound workload.
#[test]
fn bwap_wins_on_the_tiered_machine() {
    let report = run_campaign(&tiered_spec());
    let ft = exec_time(&report, "first-touch");
    let uw = exec_time(&report, "uniform-workers");
    let ua = exec_time(&report, "uniform-all");
    let bwap = exec_time(&report, "bwap");
    assert!(bwap < ft, "bwap {bwap} vs first-touch {ft}");
    assert!(bwap < uw, "bwap {bwap} vs uniform-workers {uw}");
    assert!(bwap < ua, "bwap {bwap} vs uniform-all {ua}");
}

/// The tier axis rides along in the v2 report; worker counts beyond the
/// worker-capable nodes are per-cell errors, not panics.
#[test]
fn tiered_campaign_reports_the_tier_axis() {
    let spec = tiered_spec().worker_counts(vec![2, 4]);
    let report = run_campaign(&spec);
    let tiers = report.node_tiers.as_ref().expect("heterogeneous machine carries tiers");
    assert_eq!(tiers.len(), 4);
    assert_eq!(tiers[2].cores, 0);
    assert_eq!(tiers[2].class, "cxl-expander");
    let json = report.deterministic_json();
    assert!(json.contains("\"node_tiers\""));
    assert!(json.contains("\"schema_version\": 2"));
    // 4 workers > 2 worker-capable nodes: every 4W cell errors cleanly.
    for c in &report.cells {
        match c.workers {
            2 => assert!(c.outcome.is_ok(), "{}: {:?}", c.key, c.outcome),
            4 => assert!(c.outcome.as_ref().unwrap_err().contains("out of range")),
            _ => unreachable!(),
        }
    }
}

/// Co-scheduling on the tiered machine: the high-priority application A
/// lands on the free *worker* node — never on a CPU-less expander.
#[test]
fn coscheduled_a_avoids_memory_only_nodes() {
    let m = machines::machine_tiered();
    let workers = m.best_worker_set(1);
    let r = run_coscheduled(
        &m,
        &workloads::streamcluster().scaled_down(32.0),
        workers,
        &PlacementPolicy::UniformWorkers,
    )
    .expect("A fits on the remaining worker node");
    assert!(r.a_stall_frac.is_some());
    // Both worker nodes taken: nowhere CPU-capable left for A.
    let both = m.worker_nodes();
    let err = run_coscheduled(
        &m,
        &workloads::streamcluster().scaled_down(32.0),
        both,
        &PlacementPolicy::UniformWorkers,
    );
    assert!(err.is_err());
}

/// Campaign determinism extends to the tiered machine: same spec + seed
/// => byte-identical deterministic payload, at any shard count.
#[test]
fn tiered_reports_are_deterministic() {
    let spec = tiered_spec();
    let a = run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
    let b = run_campaign_with(&spec, &CampaignConfig { threads: Some(4), ..Default::default() });
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}
