//! Chaos property tests — the robustness headline (`docs/ROBUSTNESS.md`):
//! for any seeded fault schedule under which a campaign completes, the
//! deterministic report is byte-identical to the fault-free run.
//! Recoverable faults (cache corruption, journal loss, transport chaos,
//! delayed cells) move cells between the remote / cached / local
//! execution paths but never change what a cell computes; the one
//! deliberate exception, a panicking cell, becomes an error cell in its
//! own slot while every other cell completes.

use bwap_bench::worker::{coordinate, serve, SupervisionConfig};
use bwap_runtime::campaign::faults::ALL_KINDS;
use bwap_runtime::{CellCache, FaultKind, FaultPlan};
use bwap_suite::prelude::*;
use proptest::prelude::*;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

/// A small but real matrix: two policies and two DWP points give dedup
/// classes, error fan-out and cache traffic something to act on.
fn chaos_spec(seed: u64) -> CampaignSpec {
    CampaignSpec::new("chaos", machines::machine_b())
        .workloads(vec![workloads::streamcluster().scaled_down(32.0)])
        .policies(vec![
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::Bwap(BwapConfig::default()),
        ])
        .scenarios(vec![ScenarioKind::Standalone])
        .worker_counts(vec![1])
        .dwp_grid(vec![DwpPoint::AsConfigured, DwpPoint::Static(0.5)])
        .seed(seed)
}

fn tmp(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bwap-chaos-{tag}-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `--faults` grammar round-trips: any plan — random rule set in
    /// random construction order, random seed — serializes via
    /// `FaultPlan::to_spec` to a string that parses back (under an
    /// unrelated default seed) into a plan with the same seed, the same
    /// canonical form, and bit-identical decisions for every kind. This
    /// is what makes a logged spec string a complete replay coordinate.
    #[test]
    fn fault_spec_grammar_round_trips(
        rules in prop::collection::vec((0usize..ALL_KINDS.len(), 0.0f64..1.0, 0u64..500), 0..8),
        seed in 0u64..1_000_000,
        other_default in 0u64..1_000,
    ) {
        let mut plan = FaultPlan::new(seed);
        for &(k, rate, param) in &rules {
            plan = plan.with_param(ALL_KINDS[k], rate, param);
        }
        let spec = plan.to_spec();
        let back = FaultPlan::parse(&spec, other_default)
            .unwrap_or_else(|e| panic!("canonical spec {spec:?} must re-parse: {e}"));
        prop_assert_eq!(back.seed(), plan.seed(), "seed survives in {}", &spec);
        prop_assert_eq!(back.to_spec(), spec.clone(), "to_spec is a parse fixpoint");
        prop_assert_eq!(back.is_empty(), plan.is_empty());
        prop_assert_eq!(back.recoverable(), plan.recoverable());
        for kind in ALL_KINDS {
            for key in ["worker-0#attempt-0", "cell-key", "k7"] {
                prop_assert_eq!(
                    back.decide(kind, key),
                    plan.decide(kind, key),
                    "decision drift for {:?} on {:?} via {}",
                    kind, key, &spec
                );
            }
        }
    }

    /// Out-of-range rates are rejected with the typed rate error, on
    /// either side of [0, 1].
    #[test]
    fn fault_rates_outside_unit_interval_are_rejected(
        above in 1.0001f64..1_000.0,
        below in -1_000.0f64..-0.0001,
    ) {
        for rate in [above, below] {
            let err = FaultPlan::parse(&format!("disconnect={rate}"), 0).unwrap_err();
            prop_assert!(err.contains("bad fault rate"), "{rate}: {err}");
        }
    }
}

/// Each malformed spec shape gets its own typed, term-naming error — the
/// CLI surfaces these verbatim, so they must stay diagnostic.
#[test]
fn fault_spec_errors_name_the_offending_term() {
    for (spec, needle) in [
        ("warp=0.5", "unknown fault kind"),
        ("disconnect", "bad fault term"),
        ("disconnect=half", "bad fault rate"),
        ("latency=0.5:soon", "bad fault param"),
        ("seed=banana", "bad fault seed"),
    ] {
        let err = FaultPlan::parse(spec, 0).unwrap_err();
        assert!(err.contains(needle), "{spec:?}: {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random recoverable fault plans against the in-process pipeline
    /// (cache corruption, journal loss, delayed cells): the campaign
    /// always completes and its deterministic bytes never move. A warm
    /// rerun over the chaos-scarred cache directory is identical too —
    /// corrupted entries degrade to misses, never to wrong results.
    #[test]
    fn recoverable_fault_plans_never_change_the_report(
        plan_seed in 0u64..10_000,
        torn in 0.0f64..1.0,
        flip in 0.0f64..1.0,
        journal in 0.0f64..1.0,
        delay in 0.0f64..1.0,
    ) {
        let spec = chaos_spec(41);
        let golden = run_campaign(&spec).deterministic_json();
        let dir = tmp("local", plan_seed);
        let plan = FaultPlan::new(plan_seed)
            .with(FaultKind::CacheTorn, torn)
            .with(FaultKind::CacheFlip, flip)
            .with(FaultKind::JournalDrop, journal)
            .with_param(FaultKind::CellDelay, delay, 2);
        let cfg = CampaignConfig {
            cache_dir: Some(dir.clone()),
            faults: Some(plan),
            ..Default::default()
        };
        let chaos = run_campaign_with(&spec, &cfg);
        prop_assert_eq!(chaos.deterministic_json(), golden.clone());
        let warm = run_campaign_with(&spec, &cfg);
        prop_assert_eq!(warm.deterministic_json(), golden);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Random transport fault schedules against a real loopback worker:
    /// whatever the supervised coordinator cannot serve remotely falls
    /// back to local execution, and the merged report is byte-identical
    /// to the fault-free golden. Mid-batch kills lose no verified cells —
    /// every accepted (descriptor-verified) entry replays from the cache
    /// instead of re-executing.
    #[test]
    fn supervised_remote_chaos_completes_byte_identically(
        plan_seed in 0u64..10_000,
        refuse in 0.0f64..0.5,
        disconnect in 0.0f64..0.9,
        corrupt in 0.0f64..0.9,
        truncate in 0.0f64..0.9,
    ) {
        // The spec must travel through the CLI vocabulary: the worker
        // rebuilds it from `sa.to_args()`, and descriptors only match if
        // both sides built the identical spec.
        let sa = bwap_bench::cli::SpecArgs {
            name: "chaos".into(),
            workloads: "SC".into(),
            policies: "uniform-workers,bwap".into(),
            dwps: "online,0.5".into(),
            seed: 43,
            quick: true,
            ..Default::default()
        };
        let spec = sa.build().expect("spec");
        let golden = run_campaign(&spec).deterministic_json();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let _ = serve(&listener, Some(2), false, Duration::from_secs(5));
        });

        let plan = FaultPlan::new(plan_seed)
            .with(FaultKind::ConnectRefuse, refuse)
            .with(FaultKind::Disconnect, disconnect)
            .with(FaultKind::CorruptFrame, corrupt)
            .with(FaultKind::TruncateFrame, truncate)
            .with_param(FaultKind::Latency, 0.5, 3);
        let sup = SupervisionConfig {
            io_timeout: Duration::from_secs(5),
            batch_deadline: Duration::from_secs(60),
            max_rounds: 3,
            backoff_base: Duration::from_millis(2),
            quarantine_after: 100,
        };
        let dir = tmp("remote", plan_seed);
        let cache = CellCache::open(&dir).expect("cache");
        let outcome =
            coordinate(&spec, &sa.to_args(), &[addr], &cache, true, &sup, Some(&plan));

        let cfg = CampaignConfig { cache_dir: Some(dir.clone()), ..Default::default() };
        let merged = run_campaign_with(&spec, &cfg);
        prop_assert_eq!(merged.deterministic_json(), golden);
        // No verified cell was lost to a dying worker: each accepted
        // representative serves at least one cache hit in the merge.
        let hits = merged.cells.iter().filter(|c| c.cache_hit).count();
        prop_assert!(
            hits >= outcome.accepted,
            "{} accepted but only {hits} cache hits",
            outcome.accepted
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    /// CellPanic is the one non-recoverable fault: with dedup off (so the
    /// fault keys on each cell's own key), exactly the cells the plan
    /// selects become error cells carrying the panic message, every other
    /// cell completes with results identical to the fault-free baseline —
    /// and the chaos run itself is replayable bit-for-bit.
    #[test]
    fn panicking_cells_become_error_cells_while_others_complete(
        plan_seed in 0u64..10_000,
        rate in 0.05f64..0.95,
    ) {
        let spec = chaos_spec(47);
        let baseline = run_campaign(&spec);
        let plan = FaultPlan::new(plan_seed).with(FaultKind::CellPanic, rate);
        let cfg = CampaignConfig { dedup: false, faults: Some(plan.clone()), ..Default::default() };
        let chaos = run_campaign_with(&spec, &cfg);
        prop_assert_eq!(baseline.cells.len(), chaos.cells.len());
        for (b, c) in baseline.cells.iter().zip(&chaos.cells) {
            prop_assert_eq!(&b.key, &c.key);
            let hit = plan.decide(FaultKind::CellPanic, &c.key).is_some();
            match &c.outcome {
                Err(e) => {
                    prop_assert!(hit, "cell {} errored without a panic fault: {e}", c.key);
                    prop_assert!(e.contains("cell panicked"), "{e}");
                    prop_assert!(e.contains(&c.key), "panic message names the victim: {e}");
                }
                Ok(r) => {
                    prop_assert!(!hit, "cell {} ignored its panic fault", c.key);
                    let br = b.result().expect("baseline cell succeeds");
                    prop_assert_eq!(br.exec_time_s.to_bits(), r.exec_time_s.to_bits());
                }
            }
        }
        let again = run_campaign_with(&spec, &cfg);
        prop_assert_eq!(chaos.deterministic_json(), again.deterministic_json());
    }
}
