//! Workspace-level smoke test: the facade quickstart invariant as a plain
//! `#[test]`, so the core claim is exercised even when doctests are
//! skipped (e.g. `cargo test --tests`, or tools that don't run doctests).

use bwap_suite::prelude::*;

/// BWAP beats uniform-workers interleave on the scaled Streamcluster spec
/// from the README/facade quickstart (machine A, 2 workers).
#[test]
fn quickstart_bwap_beats_uniform_interleave() {
    let machine = machines::machine_a();
    let spec = workloads::streamcluster().scaled_down(32.0);
    let workers = machine.best_worker_set(2);

    let uniform =
        run_coscheduled(&machine, &spec, workers, &PlacementPolicy::UniformWorkers).unwrap();
    let bwap =
        run_coscheduled(&machine, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default()))
            .unwrap();

    assert!(
        bwap.exec_time_s < uniform.exec_time_s,
        "BWAP ({:.4}s) must beat uniform-workers interleave ({:.4}s) on scaled Streamcluster",
        bwap.exec_time_s,
        uniform.exec_time_s
    );
    assert!(bwap.exec_time_s.is_finite() && bwap.exec_time_s > 0.0);
}
