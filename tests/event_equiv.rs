//! Campaign-level differential pin for the event-driven time engine: every
//! canned experiment family — probe (fig1a), baseline matrix (table1),
//! DWP sweep (fig4), heterogeneous tiers (fig_tiered), phase-structured
//! adaptive (fig_phases) — must produce a byte-identical
//! `deterministic_json` report under `EngineMode::EventDriven`, and the
//! EventDriven reports must also match the blessed goldens under
//! `tests/golden/` (modulo the schema version header, exactly like
//! `tests/golden_reports.rs`). The engine-level half of this harness
//! lives in `crates/numasim/tests/event_equiv.rs`.

use bwap_bench::experiments::{
    fig1a_spec, fig4_spec, fig_phases_spec, fig_tiered_spec, table1_spec,
};
use bwap_runtime::{run_campaign, CampaignSpec, EngineMode};
use std::path::PathBuf;

/// Run `spec` under both engines; require byte-identical deterministic
/// reports and return the EventDriven report's full JSON for volatile
/// field checks.
fn diff(name: &str, spec: CampaignSpec) -> String {
    let stepped = run_campaign(&spec.clone().engine_mode(EngineMode::Stepped));
    let event = run_campaign(&spec.engine_mode(EngineMode::EventDriven));
    for cell in stepped.cells.iter().chain(event.cells.iter()) {
        assert!(cell.outcome.is_ok(), "{name} cell {}: {:?}", cell.key, cell.outcome);
    }
    assert_eq!(
        stepped.deterministic_json(),
        event.deterministic_json(),
        "campaign {name}: engine modes must be result-indistinguishable"
    );
    event.to_json()
}

#[test]
fn fig1a_probe_campaign_is_engine_mode_invariant() {
    let full = diff("fig1a", fig1a_spec());
    // The engine mode is volatile provenance: present in the full report,
    // absent (with the rest of the volatile block) from the deterministic
    // payload compared above.
    assert!(full.contains("\"engine_mode\": \"event-driven\""));
}

#[test]
fn table1_quick_campaign_is_engine_mode_invariant() {
    diff("table1_quick", table1_spec(true));
}

#[test]
fn fig4_quick_sweep_is_engine_mode_invariant() {
    diff("fig4_quick", fig4_spec(true));
}

#[test]
fn fig_tiered_quick_campaign_is_engine_mode_invariant() {
    diff("fig_tiered_quick", fig_tiered_spec(true));
}

#[test]
fn fig_phases_quick_campaign_is_engine_mode_invariant() {
    diff("fig_phases_quick", fig_phases_spec(true));
}

/// The stepped-mode goldens stay authoritative for the event-driven
/// engine: same bytes, not merely self-consistency between fresh runs.
#[test]
fn event_driven_reports_match_the_stepped_goldens() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let modulo_schema_version = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.trim_start().starts_with("\"schema_version\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for (name, spec) in [
        ("fig1a", fig1a_spec()),
        ("table1_quick", table1_spec(true)),
        ("fig4_quick", fig4_spec(true)),
    ] {
        let path = golden_dir.join(format!("{name}.json"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
        let got = run_campaign(&spec.engine_mode(EngineMode::EventDriven)).deterministic_json();
        assert_eq!(
            modulo_schema_version(&want),
            modulo_schema_version(&got),
            "campaign {name}: EventDriven diverged from the blessed golden"
        );
    }
}

#[test]
fn stepped_default_emits_no_engine_mode_field() {
    let report = run_campaign(&fig1a_spec());
    assert!(
        !report.to_json().contains("engine_mode"),
        "the default engine stays unmarked (omitted-not-null, schema v2)"
    );
}
