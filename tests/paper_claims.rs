//! The paper's headline claims, asserted at reduced scale. Each test names
//! the claim it covers; `EXPERIMENTS.md` records the full-scale numbers.

use bwap_suite::prelude::*;
use bwap_suite::runtime::{dwp_sweep, sweep::sweep_optimum};

#[test]
fn claim_fig1a_probe_matches_measured_matrix_exactly() {
    // §II: the Fig. 1a matrix is machine A's ground truth; our probe
    // reproduces it bit-exactly by calibration.
    let m = machines::machine_a();
    let probed = bwap_suite::fabric::probe_matrix(&m);
    assert!(probed.max_rel_error(&machines::fig1a_matrix()).unwrap() < 1e-9);
    assert!((probed.amplitude() - 5.83).abs() < 0.01);
}

#[test]
fn claim_canonical_weights_follow_eq5() {
    // §III-A2, Eq. 5, hand-checked against Fig. 1a.
    let m = machines::machine_a();
    let w = canonical_weights(m.path_caps(), NodeSet::from_nodes([NodeId(0), NodeId(1)])).unwrap();
    let expected = [5.5, 5.5, 2.9, 1.8, 1.8, 2.8, 1.8, 2.8];
    let sum: f64 = expected.iter().sum();
    for i in 0..8 {
        assert!((w.get(NodeId(i as u16)) - expected[i as usize] / sum).abs() < 1e-12);
    }
}

#[test]
fn claim_dwp_curve_convex_and_stall_tracks_time() {
    // §IV-B / Fig. 4: "stall rate is effectively correlated to execution
    // time and its variation with DWP is essentially convex".
    let m = machines::machine_a();
    let spec = workloads::streamcluster().scaled_down(16.0);
    let workers = m.best_worker_set(1);
    let dwps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let points = dwp_sweep(&m, &spec, workers, &dwps, true).unwrap();
    // Stall ranks must equal time ranks (correlation).
    let rank = |key: fn(&bwap_suite::runtime::SweepPoint) -> f64| {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| key(&points[a]).partial_cmp(&key(&points[b])).unwrap());
        idx
    };
    assert_eq!(rank(|p| p.exec_time_s), rank(|p| p.stall_frac));
    // Quasi-convexity: times fall to the optimum, then rise.
    let opt = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.exec_time_s.partial_cmp(&b.1.exec_time_s).unwrap())
        .unwrap()
        .0;
    for w in points[..=opt].windows(2) {
        assert!(w[1].exec_time_s <= w[0].exec_time_s + 1e-9, "not decreasing before optimum");
    }
    for w in points[opt..].windows(2) {
        assert!(w[1].exec_time_s >= w[0].exec_time_s - 1e-9, "not increasing after optimum");
    }
}

#[test]
fn claim_tuner_lands_within_two_steps_of_static_optimum() {
    // §IV-B: "the DWP tuner was able to successfully find the optimal DWP
    // by a maximum error margin of 1 iterative step" (stand-alone tuner);
    // the co-scheduled variant adds at most one more probe step.
    let m = machines::machine_a();
    let spec = workloads::streamcluster().scaled_down(4.0);
    let workers = m.best_worker_set(1);
    let dwps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let points = dwp_sweep(&m, &spec, workers, &dwps, true).unwrap();
    let best = sweep_optimum(&points).unwrap();
    let online =
        run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default())).unwrap();
    let chosen = online.chosen_dwp.unwrap();
    assert!((chosen - best.dwp).abs() <= 0.2 + 1e-9, "chosen {chosen} vs static best {}", best.dwp);
}

#[test]
fn claim_kernel_and_user_level_agree_within_3_percent() {
    // §IV: "by enabling the kernel-level variant, we observed only
    // marginal gains (at most 3%)".
    let m = machines::machine_b();
    let spec = workloads::streamcluster().scaled_down(16.0);
    let workers = m.best_worker_set(2);
    let kernel =
        run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::kernel_mode()))
            .unwrap();
    let user =
        run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default())).unwrap();
    let gap = (user.exec_time_s / kernel.exec_time_s - 1.0).abs();
    assert!(gap < 0.03, "kernel/user gap {gap}");
}

#[test]
fn claim_first_touch_speedup_up_to_4x_shape() {
    // §I: "up to 4x speedup compared to the Linux default first-touch".
    // At reduced scale the exact factor differs; assert the strong-shape
    // version: bwap >= 1.8x over first-touch somewhere in the co-scheduled
    // matrix (the full-scale harness reports the headline value).
    let m = machines::machine_a();
    let spec = workloads::streamcluster().scaled_down(16.0);
    let workers = m.best_worker_set(4);
    let ft = run_coscheduled(&m, &spec, workers, &PlacementPolicy::FirstTouch).unwrap();
    let bw =
        run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default())).unwrap();
    let speedup = ft.exec_time_s / bw.exec_time_s;
    assert!(speedup > 1.8, "bwap vs first-touch speedup {speedup}");
}

#[test]
fn claim_symmetric_machine_degenerates_to_uniform() {
    // BWAP's asymmetry-awareness should cost nothing on symmetric
    // hardware: canonical weights collapse to uniform.
    let m = machines::symmetric_quad();
    let w = canonical_weights(m.path_caps(), NodeSet::from_nodes([NodeId(0), NodeId(1)])).unwrap();
    assert!(w.max_abs_diff(&WeightDistribution::uniform(4)) < 1e-12);
}

#[test]
fn claim_observation3_scaling_reduces_variance() {
    // §II Observation 3: scaling worker / non-worker subsets of two
    // applications' optimal distributions onto a common mass makes the
    // per-node weights nearly coincide. We verify the mechanism BWAP
    // builds on it: two different DWP values of the same canonical
    // distribution have *identical* within-set relative weights.
    let m = machines::machine_a();
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    let canonical = canonical_weights(m.path_caps(), workers).unwrap();
    let low = apply_dwp(&canonical, workers, 0.2).unwrap();
    let high = apply_dwp(&canonical, workers, 0.7).unwrap();
    // Rescale `high`'s worker subset to `low`'s worker mass: per-node
    // values must match exactly.
    let scale = low.mass(workers) / high.mass(workers);
    for node in workers.iter() {
        assert!((high.get(node) * scale - low.get(node)).abs() < 1e-12);
    }
    let non_workers = workers.complement(8);
    let scale = low.mass(non_workers) / high.mass(non_workers);
    for node in non_workers.iter() {
        assert!((high.get(node) * scale - low.get(node)).abs() < 1e-12);
    }
}
