//! Golden pin for the heterogeneous-tier refactor: campaign reports of
//! the *symmetric* reference machines (fig1a's probe, table1 and fig4 at
//! quick scale) must stay byte-identical across refactors, modulo the
//! schema version header. The goldens under `tests/golden/` were blessed
//! before the tiered-node refactor; any physics or serialization drift on
//! the old machines fails these tests.
//!
//! Regenerate deliberately with:
//! `BWAP_BLESS=1 cargo test --test golden_reports`.

use bwap_bench::experiments::{fig1a_spec, fig4_spec, fig_fleet_spec, table1_spec};
use bwap_runtime::run_campaign;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.json"))
}

/// Drop the schema version header: it is the one line allowed to change
/// for old-machine reports (the tier axis bumped it without touching any
/// symmetric-machine payload).
fn modulo_schema_version(s: &str) -> String {
    s.lines()
        .filter(|l| !l.trim_start().starts_with("\"schema_version\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn check(name: &str, json: &str) {
    let path = golden_path(name);
    if std::env::var_os("BWAP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); bless with BWAP_BLESS=1", path.display())
    });
    assert_eq!(
        modulo_schema_version(&want),
        modulo_schema_version(json),
        "campaign {name} diverged from its pre-refactor golden (modulo schema_version)"
    );
}

#[test]
fn fig1a_report_matches_golden() {
    check("fig1a", &run_campaign(&fig1a_spec()).deterministic_json());
}

#[test]
fn table1_quick_report_matches_golden() {
    check("table1_quick", &run_campaign(&table1_spec(true)).deterministic_json());
}

#[test]
fn fig4_quick_report_matches_golden() {
    check("fig4_quick", &run_campaign(&fig4_spec(true)).deterministic_json());
}

#[test]
fn fig_fleet_quick_report_matches_golden() {
    check("fig_fleet_quick", &run_campaign(&fig_fleet_spec(true)).deterministic_json());
}
