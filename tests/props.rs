//! Property-based tests over the suite's core invariants.

use bwap::{apply_dwp, canonical_weights, user_level_plan, WeightDistribution};
use bwap_fabric::{solve_maxmin, Bundle};
use bwap_suite::prelude::*;
use proptest::prelude::*;

fn weight_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, n)
        .prop_filter("positive mass", |v| v.iter().sum::<f64>() > 0.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Max-min allocation never violates a capacity or a demand bound,
    /// and saturates at least one constraint per unbounded bundle.
    #[test]
    fn maxmin_respects_all_constraints(
        caps in prop::collection::vec(0.5f64..20.0, 3..12),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nr = caps.len();
        let bundles: Vec<Bundle> = (0..rng.gen_range(1..10usize))
            .map(|_| {
                let touches = rng.gen_range(1..=nr.min(4));
                let mut usage: Vec<(usize, f64)> = Vec::new();
                for _ in 0..touches {
                    let r = rng.gen_range(0..nr);
                    if !usage.iter().any(|&(x, _)| x == r) {
                        usage.push((r, rng.gen_range(0.1..2.0)));
                    }
                }
                let cap = if rng.gen_bool(0.5) { rng.gen_range(0.1..5.0) } else { f64::INFINITY };
                Bundle::new(usage, cap, rng.gen_range(0.5..4.0))
            })
            .collect();
        let alloc = solve_maxmin(&caps, &bundles);
        for (r, &c) in caps.iter().enumerate() {
            prop_assert!(alloc.used[r] <= c * (1.0 + 1e-6), "resource {r} over capacity");
        }
        for (i, b) in bundles.iter().enumerate() {
            prop_assert!(alloc.activity[i] <= b.cap * (1.0 + 1e-6) || b.cap.is_infinite());
            prop_assert!(alloc.activity[i] >= 0.0);
            if b.cap.is_infinite() && !b.usage.is_empty() {
                // Unbounded bundles must be stopped by some saturated
                // resource they use.
                let binding = alloc.binding[i];
                prop_assert!(binding.is_some(), "unbounded bundle {i} unfrozen");
                let r = binding.unwrap();
                prop_assert!(alloc.used[r] >= caps[r] * (1.0 - 1e-6));
            }
        }
    }

    /// Algorithm 1 plans partition the segment and realize the target
    /// weights up to rounding.
    #[test]
    fn algorithm1_partitions_and_matches_weights(
        raw in weight_vec(8),
        pages in 1u64..200_000,
    ) {
        let weights = WeightDistribution::from_raw(raw).unwrap();
        let plan = user_level_plan(pages, &weights).unwrap();
        // Partition.
        let mut cursor = 0;
        for call in &plan {
            prop_assert_eq!(call.start_page, cursor);
            prop_assert!(call.len_pages > 0);
            cursor += call.len_pages;
        }
        prop_assert_eq!(cursor, pages);
        // Ratio accuracy: within (#calls) pages per node.
        let err = bwap::placement::plan_error(&plan, &weights, pages);
        let bound = (plan.len() as f64 + 1.0) / pages as f64 + 1e-9;
        prop_assert!(err <= bound, "plan error {} > bound {}", err, bound);
    }

    /// DWP re-balancing keeps distributions normalized, moves worker mass
    /// monotonically, and preserves within-set ratios.
    #[test]
    fn dwp_rebalancing_invariants(
        raw in weight_vec(8),
        mask in 1u64..255u64,
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let canonical = WeightDistribution::from_raw(raw).unwrap();
        let workers = NodeSet::from_nodes(
            (0..8u16).filter(|i| mask & (1 << i) != 0).map(NodeId),
        );
        prop_assume!(canonical.mass(workers) > 1e-6);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let w_lo = apply_dwp(&canonical, workers, lo).unwrap();
        let w_hi = apply_dwp(&canonical, workers, hi).unwrap();
        prop_assert!(w_lo.is_normalized());
        prop_assert!(w_hi.is_normalized());
        prop_assert!(w_hi.mass(workers) >= w_lo.mass(workers) - 1e-9);
        // DWP = 1 puts everything on workers.
        let w1 = apply_dwp(&canonical, workers, 1.0).unwrap();
        prop_assert!((w1.mass(workers) - 1.0).abs() < 1e-9);
    }

    /// Canonical weights (Eq. 5) are a valid distribution dominated by
    /// worker-reachable bandwidth: enlarging the worker set can only
    /// lower each node's minimum bandwidth.
    #[test]
    fn canonical_weights_monotone_in_worker_set(mask in 1u64..255u64) {
        let m = machines::machine_a();
        let workers = NodeSet::from_nodes(
            (0..8u16).filter(|i| mask & (1 << i) != 0).map(NodeId),
        );
        let w = canonical_weights(m.path_caps(), workers).unwrap();
        prop_assert!(w.is_normalized());
        let mb_small = bwap::min_bandwidths(m.path_caps(), workers).unwrap();
        let mb_all = bwap::min_bandwidths(m.path_caps(), m.all_nodes()).unwrap();
        for i in 0..8 {
            prop_assert!(mb_all[i] <= mb_small[i] + 1e-12);
        }
    }

    /// The kernel weighted-interleave policy places any segment with
    /// per-node error below one page in a thousand.
    #[test]
    fn weighted_policy_placement_accuracy(raw in weight_vec(4)) {
        let weights = WeightDistribution::from_raw(raw).unwrap();
        let m = machines::machine_b();
        let mut sim = Simulator::new(m, SimConfig::default());
        let app = AppProfile {
            name: "p".into(),
            read_gbps_per_thread: 1.0,
            write_gbps_per_thread: 0.0,
            private_frac: 0.0,
            latency_sensitivity: 0.0,
            serial_frac: 0.0,
            multinode_penalty: 0.0,
            shared_pages: 50_000,
            private_pages_per_thread: 1,
            total_traffic_gb: f64::INFINITY,
            open_loop: false,
        };
        let pid = sim
            .spawn(
                app,
                NodeSet::single(NodeId(0)),
                None,
                MemPolicy::WeightedInterleave(weights.to_vec()),
            )
            .unwrap();
        let d = sim.shared_distribution(pid).unwrap();
        for (di, wi) in d.iter().zip(weights.as_slice()) {
            prop_assert!((di - wi).abs() < 1e-3);
        }
    }

    /// Random workloads always run to completion and produce positive,
    /// finite execution times under every baseline policy.
    #[test]
    fn any_workload_any_policy_terminates(seed in 0u64..40) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut spec = bwap_suite::workloads::generator::random_workload(
            &mut rng,
            &bwap_suite::workloads::generator::GeneratorBounds::default(),
        );
        spec.total_traffic_gb = spec.total_traffic_gb.min(30.0);
        let m = machines::machine_b();
        let workers = m.best_worker_set(2);
        for policy in [PlacementPolicy::FirstTouch, PlacementPolicy::UniformAll] {
            let r = run_standalone(&m, &spec, workers, &policy).unwrap();
            prop_assert!(r.exec_time_s.is_finite() && r.exec_time_s > 0.0);
        }
    }
}
