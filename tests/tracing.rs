//! Tracing contract tests: traced campaigns emit valid, byte-identical
//! Chrome-trace files; tracing never changes results; the example trace
//! embedded in `docs/TRACING.md` satisfies the validator it documents.

use bwap_bench::tracecheck::validate;
use bwap_runtime::{
    run_campaign_with, AdaptiveConfig, CampaignConfig, CampaignSpec, EngineMode, PlacementPolicy,
    ScenarioKind,
};
use bwap_topology::machines;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn spec() -> CampaignSpec {
    // The adaptive cell uses the fig_phases quick tuner (fast sampling)
    // so the watchdog actually re-tunes inside this scaled-down run.
    let tuner = bwap::DwpTunerConfig {
        samples_per_iteration: 4,
        trim: 1,
        sample_interval_s: 0.02,
        step: 0.2,
        ..bwap::DwpTunerConfig::default()
    };
    let bwap_cfg = bwap::BwapConfig { tuner, ..bwap::BwapConfig::default() };
    let adaptive = AdaptiveConfig { bwap: bwap_cfg, max_retunes: 32, ..AdaptiveConfig::default() };
    CampaignSpec::new("tracing-test", machines::machine_b())
        .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
        .phased_workloads(vec![bwap_workloads::sc_bandwidth_flip().scaled_down(32.0)])
        .phase_periods(vec![3.0])
        .policies(vec![PlacementPolicy::UniformWorkers, PlacementPolicy::AdaptiveBwap(adaptive)])
        .scenarios(vec![ScenarioKind::Standalone])
        .worker_counts(vec![1])
        .seed(11)
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bwap-tracing-test-{tag}"))
}

/// Map of trace file name -> contents for one traced campaign run.
fn traced_run(tag: &str, threads: usize) -> (String, BTreeMap<String, String>) {
    traced_run_mode(tag, threads, EngineMode::Stepped)
}

fn traced_run_mode(
    tag: &str,
    threads: usize,
    mode: EngineMode,
) -> (String, BTreeMap<String, String>) {
    let dir = tmp(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CampaignConfig {
        threads: Some(threads),
        trace_dir: Some(dir.clone()),
        ..Default::default()
    };
    let report = run_campaign_with(&spec().engine_mode(mode), &cfg);
    let mut files = BTreeMap::new();
    for cell in &report.cells {
        let path = cell.trace_path.as_ref().unwrap_or_else(|| panic!("{}: no trace", cell.key));
        let name = PathBuf::from(path).file_name().unwrap().to_str().unwrap().to_string();
        files.insert(name, std::fs::read_to_string(path).expect("trace file readable"));
    }
    let det = report.deterministic_json();
    let _ = std::fs::remove_dir_all(&dir);
    (det, files)
}

#[test]
fn traced_campaign_emits_valid_byte_identical_traces() {
    let (det_serial, serial) = traced_run("serial", 1);
    let (det_wide, wide) = traced_run("wide", 8);
    let (_, again) = traced_run("again", 1);

    assert!(!serial.is_empty());
    for (name, text) in &serial {
        let stats = validate(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.slices > 0, "{name}: records epochs");
        assert!(stats.tracks >= 2, "{name}: engine + process tracks");
        assert!(name.starts_with("trace-") && name.ends_with(".json"), "{name}");
    }
    // The adaptive phased cell shows the full story: migration flows and
    // the daemon's retune markers land in its trace.
    let adaptive = serial
        .iter()
        .find(|(name, _)| name.contains("SC.FLIP") && name.contains("bwap-adaptive"))
        .map(|(_, text)| text)
        .expect("adaptive cell traced");
    assert!(adaptive.contains("\"name\": \"migration\""));
    assert!(adaptive.contains("\"name\": \"retune\""));
    assert!(adaptive.contains("\"name\": \"phase-switch\""));

    // Byte-identical across shard counts and reruns.
    assert_eq!(serial, wide, "traces must not depend on the shard count");
    assert_eq!(serial, again, "traces must be identical across reruns");
    assert_eq!(det_serial, det_wide);
}

#[test]
fn tracing_never_changes_the_deterministic_report() {
    let untraced =
        run_campaign_with(&spec(), &CampaignConfig { threads: Some(2), ..Default::default() });
    assert!(untraced.cells.iter().all(|c| c.trace_path.is_none()));
    assert!(!untraced.to_json().contains("trace_path"));
    let (det_traced, _) = traced_run("offon", 2);
    assert_eq!(untraced.deterministic_json(), det_traced, "trace-on == trace-off");
}

/// Event-driven traces keep the full tracing contract (monotonic
/// timestamps, balanced slices, paired flows), record `stride` slices
/// where the engine skipped rebuild+solve, and re-stamp link counters at
/// each stride boundary rather than leaving a plateau-wide gap — all
/// without changing the deterministic report.
#[test]
fn event_driven_traces_validate_and_stamp_stride_boundaries() {
    let det_stepped = run_campaign_with(
        &spec().engine_mode(EngineMode::Stepped),
        &CampaignConfig { threads: Some(2), ..Default::default() },
    )
    .deterministic_json();
    let (det_event, files) = traced_run_mode("event", 2, EngineMode::EventDriven);
    assert_eq!(det_stepped, det_event, "engine modes are result-indistinguishable");

    let mut stride_boundaries = 0usize;
    for (name, text) in &files {
        let stats = validate(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.slices > 0, "{name}: records epochs");
        assert_eq!(stats.dropped, 0, "{name}: fits the ring");

        // Every stride close must carry fresh counter samples: for each
        // `E` of a "stride" slice there is a counter stamped at that ts.
        for line in text.lines().filter(|l| l.contains("\"name\": \"stride\"")) {
            if !line.contains("\"ph\": \"E\"") {
                continue;
            }
            stride_boundaries += 1;
            let ts = line
                .split("\"ts\": ")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .unwrap_or_else(|| panic!("{name}: stride end without ts: {line}"));
            assert!(
                text.lines()
                    .any(|l| l.contains("\"ph\": \"C\"") && l.contains(&format!("\"ts\": {ts},"))),
                "{name}: stride ending at ts {ts} has no counter sample"
            );
        }
    }
    assert!(stride_boundaries > 0, "the event engine strode somewhere in this campaign");

    // Still byte-identical across reruns and shard counts.
    let (_, again) = traced_run_mode("event-again", 1, EngineMode::EventDriven);
    assert_eq!(files, again, "event-driven traces are deterministic");
}

/// The example document in `docs/TRACING.md` is exactly the emitted
/// shape, so it must pass the validator the same chapter documents.
#[test]
fn tracing_md_snippet_is_a_valid_trace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("docs/TRACING.md")).expect("docs/TRACING.md");
    let snippet = text
        .split("```json\n")
        .nth(1)
        .and_then(|rest| rest.split("```").next())
        .expect("TRACING.md embeds a ```json example");
    let stats = validate(snippet).unwrap_or_else(|e| panic!("TRACING.md snippet invalid: {e}"));
    assert_eq!(stats.slices, 2, "two epoch slices");
    assert_eq!(stats.flows, 1, "one completed migration flow");
    assert_eq!(stats.tracks, 2, "engine + SC.FLIP tracks");
    assert_eq!(stats.dropped, 0);
}
