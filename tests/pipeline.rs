//! End-to-end integration: the complete BWAP pipeline against every
//! baseline, spanning all workspace crates. Workloads are scaled down so
//! the suite also runs quickly in debug builds.

use bwap_suite::prelude::*;

fn sc() -> workloads::WorkloadSpec {
    workloads::streamcluster().scaled_down(32.0)
}

fn oc() -> workloads::WorkloadSpec {
    workloads::ocean_cp().scaled_down(32.0)
}

#[test]
fn policy_ordering_machine_a_two_workers_cosched() {
    // The paper's central comparison (Fig. 2b): first-touch is the worst,
    // uniform-workers in the middle, spreading policies on top, BWAP at
    // least as good as uniform-workers by a clear margin.
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let time =
        |p: &PlacementPolicy| run_coscheduled(&m, &sc(), workers, p).expect("scenario").exec_time_s;
    let ft = time(&PlacementPolicy::FirstTouch);
    let uw = time(&PlacementPolicy::UniformWorkers);
    let ua = time(&PlacementPolicy::UniformAll);
    let bw = time(&PlacementPolicy::Bwap(BwapConfig::default()));
    assert!(ft > uw, "first-touch {ft} should trail uniform-workers {uw}");
    assert!(ua < uw, "uniform-all {ua} should beat uniform-workers {uw}");
    assert!(bw < uw * 0.85, "bwap {bw} should clearly beat uniform-workers {uw}");
}

#[test]
fn bwap_uniform_sits_between_uniform_all_and_bwap() {
    // The ablation ordering of §IV-B: canonical tuner adds on top of the
    // DWP tuner; both variants at least match uniform-all on machine A.
    let m = machines::machine_a();
    let workers = m.best_worker_set(1);
    let time =
        |p: &PlacementPolicy| run_coscheduled(&m, &oc(), workers, p).expect("scenario").exec_time_s;
    let ua = time(&PlacementPolicy::UniformAll);
    let bu = time(&PlacementPolicy::Bwap(BwapConfig::bwap_uniform()));
    let bw = time(&PlacementPolicy::Bwap(BwapConfig::default()));
    assert!(bu <= ua * 1.02, "bwap-uniform {bu} vs uniform-all {ua}");
    assert!(bw <= bu * 1.02, "bwap {bw} vs bwap-uniform {bu}");
}

#[test]
fn autonuma_beats_first_touch_multiworker() {
    let m = machines::machine_a();
    let workers = m.best_worker_set(4);
    let ft = run_coscheduled(&m, &sc(), workers, &PlacementPolicy::FirstTouch)
        .expect("scenario")
        .exec_time_s;
    let an = run_coscheduled(&m, &sc(), workers, &PlacementPolicy::AutoNuma)
        .expect("scenario")
        .exec_time_s;
    assert!(an < ft, "autonuma {an} should improve on first-touch {ft}");
}

#[test]
fn gains_shrink_with_more_workers() {
    // Paper: "the benefits of BWAP over the uniform interleaving
    // alternatives drop when more workers are involved".
    let m = machines::machine_a();
    let speedup = |k: usize| {
        let workers = m.best_worker_set(k);
        let uw = run_coscheduled(&m, &sc(), workers, &PlacementPolicy::UniformWorkers)
            .expect("scenario")
            .exec_time_s;
        let bw = run_coscheduled(&m, &sc(), workers, &PlacementPolicy::Bwap(BwapConfig::default()))
            .expect("scenario")
            .exec_time_s;
        uw / bw
    };
    let s1 = speedup(1);
    let s4 = speedup(4);
    assert!(s1 > s4, "speedup at 1W ({s1}) should exceed speedup at 4W ({s4})");
}

#[test]
fn cosched_protects_high_priority_app() {
    // B spreading pages onto A's nodes must not blow up A's stalls
    // (§III-B3; the paper observed no relevant change to Swaptions).
    let m = machines::machine_b();
    let workers = m.best_worker_set(1);
    let r = run_coscheduled(&m, &sc(), workers, &PlacementPolicy::Bwap(BwapConfig::default()))
        .expect("scenario");
    let a_stall = r.a_stall_frac.expect("cosched reports A");
    assert!(a_stall < 0.2, "A's stall fraction {a_stall} too high");
}

#[test]
fn standalone_and_cosched_agree_on_direction() {
    let m = machines::machine_b();
    let workers = m.best_worker_set(2);
    for policy in [PlacementPolicy::UniformWorkers, PlacementPolicy::UniformAll] {
        let st = run_standalone(&m, &oc(), workers, &policy).expect("scenario");
        let co = run_coscheduled(&m, &oc(), workers, &policy).expect("scenario");
        // The co-scheduled run shares the machine: it can only be equal or
        // slower than stand-alone under the same policy.
        assert!(
            co.exec_time_s >= st.exec_time_s * 0.999,
            "{}: cosched {} faster than standalone {}",
            policy.label(),
            co.exec_time_s,
            st.exec_time_s
        );
    }
}

#[test]
fn results_are_deterministic() {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let policy = PlacementPolicy::Bwap(BwapConfig::default());
    let a = run_coscheduled(&m, &sc(), workers, &policy).expect("scenario");
    let b = run_coscheduled(&m, &sc(), workers, &policy).expect("scenario");
    assert_eq!(a.exec_time_s, b.exec_time_s);
    assert_eq!(a.chosen_dwp, b.chosen_dwp);
    assert_eq!(a.migrated_pages, b.migrated_pages);
}
