//! Phase-structured workloads and adaptive BWAP: run the SC bandwidth
//! flip — an application that alternates between a controller-saturating
//! streaming phase and a latency-bound point-query phase — under
//! first-touch, one-shot BWAP and the adaptive re-tuning daemon, and
//! watch the watchdog react at every phase boundary.
//!
//! Run with: `cargo run --release --example phased_adaptive`

use bwap_suite::prelude::*;

fn main() {
    let machine = machines::machine_b();
    let workers = machine.best_worker_set(1);

    // The canned phase-flipping variant of Streamcluster (scaled ~8x so
    // the example finishes in a couple of seconds of wall time), cycled
    // every 6 simulated seconds. See docs/WORKLOADS.md for the timeline
    // and the JSON trace format behind it.
    let flip = workloads::sc_bandwidth_flip().scaled_down(8.0);
    println!(
        "workload: {} ({} phases per cycle, {} GB total)",
        flip.name,
        flip.phases.len(),
        flip.total_traffic_gb
    );
    println!("worker set: {workers}\n");

    // Tuner cadence must match the phase scale: with 6 s cycles, the
    // paper's default 0.2 s x 20-sample windows would spend a whole
    // phase on one hill-climb iteration. Sample faster, decide sooner —
    // the same parameters for the one-shot and the adaptive tuner, so
    // the comparison is fair.
    let tuner = DwpTunerConfig {
        sample_interval_s: 0.02,
        samples_per_iteration: 4,
        trim: 1,
        step: 0.2,
        ..DwpTunerConfig::default()
    };
    let bwap_cfg = BwapConfig { tuner, ..BwapConfig::default() };
    let adaptive_cfg = AdaptiveConfig {
        bwap: bwap_cfg.clone(),
        max_retunes: 32, // one re-tune per boundary over many cycles
        ..AdaptiveConfig::default()
    };

    let policies = [
        PlacementPolicy::FirstTouch,
        PlacementPolicy::Bwap(bwap_cfg),
        PlacementPolicy::AdaptiveBwap(adaptive_cfg),
    ];
    println!("{:<16} {:>12} {:>10} {:>10}", "policy", "exec time", "retunes", "switches");
    let mut first_touch_time = None;
    let mut results = Vec::new();
    for policy in policies {
        let r = run_standalone_phased(
            &machine,
            &flip,
            workers,
            &policy,
            SimConfig::default(),
            Some(6.0), // phase-cycle period, seconds
        )
        .expect("scenario runs");
        if r.policy == "first-touch" {
            first_touch_time = Some(r.exec_time_s);
        }
        println!(
            "{:<16} {:>10.2} s {:>10} {:>10}",
            r.policy,
            r.exec_time_s,
            r.retunes.map_or("-".to_string(), |n| n.to_string()),
            r.phase_switches.map_or("-".to_string(), |n| n.to_string()),
        );
        results.push(r);
    }

    let reference = first_touch_time.expect("first-touch ran");
    println!("\nspeedup vs first-touch (the Linux default):");
    for r in &results {
        println!("  {:<16} {:.2}x", r.policy, reference / r.exec_time_s);
    }
    if let Some(times) = results.last().and_then(|r| r.retune_times_s.clone()) {
        let rendered: Vec<String> = times.iter().map(|t| format!("{t:.1}")).collect();
        println!("\nadaptive re-tunes at simulated seconds: [{}]", rendered.join(", "));
        println!("(one per phase boundary: the watchdog detects each demand flip)");
    }
}
