//! The paper's co-scheduling story (§III-B3) end to end: a cloud box runs
//! a latency-critical, CPU-bound service (Swaptions) on half the nodes; a
//! best-effort analytics job (Streamcluster) arrives on the other half and
//! wants the idle bandwidth of the service's nodes — without hurting it.
//!
//! This example drives the two-stage co-scheduled tuner manually (rather
//! than through the scenario runner) to show the daemon API, and verifies
//! the service's stall rate stays put while the analytics job speeds up.
//!
//! Run with: `cargo run --release --example coscheduled_cloud`

use bwap_suite::prelude::*;

fn main() {
    let machine = machines::machine_b();
    let mut sim = Simulator::new(machine.clone(), SimConfig::default());

    // High-priority service on socket 1 (nodes N3, N4), runs forever.
    let service_nodes = NodeSet::from_nodes([NodeId(2), NodeId(3)]);
    let service = sim
        .spawn(
            workloads::swaptions().profile_for(&machine),
            service_nodes,
            None,
            MemPolicy::FirstTouch,
        )
        .expect("spawn service");

    // Best-effort analytics on socket 0 (nodes N1, N2).
    let analytics_nodes = service_nodes.complement(machine.node_count());
    let spec = workloads::streamcluster().scaled_down(4.0);
    let analytics = sim
        .spawn(spec.profile_for(&machine), analytics_nodes, None, MemPolicy::FirstTouch)
        .expect("spawn analytics");

    // BWAP-init for the co-scheduled variant: canonical placement now,
    // two-stage DWP search online.
    let (daemon, handle) =
        CoschedDaemon::init(&mut sim, analytics, service, &BwapConfig::default(), true)
            .expect("BWAP-init");
    daemon.register(&mut sim);

    let service_before = sim.sample(service).expect("sample");
    let analytics_before = sim.sample(analytics).expect("sample");

    // Let the analytics job run to completion.
    let exec = sim.run_until_finished(analytics, 600.0).expect("analytics finishes");

    let service_after = sim.sample(service).expect("sample");
    let analytics_after = sim.sample(analytics).expect("sample");

    let service_stall = (service_after.stall_cycles - service_before.stall_cycles)
        / (service_after.cycles - service_before.cycles);
    let analytics_tput = analytics_after.throughput_since(&analytics_before) / 1e9;

    println!("analytics executed in {exec:.1} s of simulated time");
    println!("analytics average memory throughput: {analytics_tput:.1} GB/s");
    println!(
        "tuner: finished = {}, final DWP = {:.0}%, pages migrated for tuning = {}",
        handle.finished(),
        handle.dwp() * 100.0,
        handle.pages_applied()
    );
    println!(
        "service stall fraction while co-scheduled: {:.1}% (CPU-bound: stays small)",
        service_stall * 100.0
    );
    println!(
        "analytics pages ended up distributed as {:?}",
        sim.shared_distribution(analytics)
            .expect("distribution")
            .iter()
            .map(|x| format!("{:.0}%", x * 100.0))
            .collect::<Vec<_>>()
    );
}
