//! Capacity planning: how many worker nodes should an application get?
//!
//! The paper's stand-alone scenario (Fig. 3c/d) shows that page placement
//! and parallelism interact: applications that stop scaling benefit most
//! from bandwidth-aware placement, because idle nodes' bandwidth is free.
//! This example sweeps worker counts for a well-scaling workload (Ocean)
//! and a poorly-scaling one (SP.B) under uniform-workers and under BWAP,
//! and prints the resulting "how many nodes do I need" tables.
//!
//! Run with: `cargo run --release --example capacity_planning`

use bwap_suite::prelude::*;

fn main() {
    let machine = machines::machine_a();
    let counts = [1usize, 2, 4, 8];
    for spec in [workloads::ocean_cp().scaled_down(8.0), workloads::sp_b().scaled_down(8.0)] {
        println!("== {} on {} ==", spec.name, machine.name());
        println!(
            "{:<8} {:>22} {:>16} {:>10}",
            "workers", "uniform-workers [s]", "bwap [s]", "bwap DWP"
        );
        let mut best: Option<(usize, f64)> = None;
        for &k in &counts {
            let workers = machine.best_worker_set(k);
            let uw = run_standalone(&machine, &spec, workers, &PlacementPolicy::UniformWorkers)
                .expect("scenario");
            let bw = run_standalone(
                &machine,
                &spec,
                workers,
                &PlacementPolicy::Bwap(BwapConfig::default()),
            )
            .expect("scenario");
            println!(
                "{k:<8} {:>22.2} {:>16.2} {:>10}",
                uw.exec_time_s,
                bw.exec_time_s,
                bw.chosen_dwp.map_or("-".into(), |d| format!("{:.0}%", d * 100.0))
            );
            if best.map_or(true, |(_, t)| bw.exec_time_s < t) {
                best = Some((k, bw.exec_time_s));
            }
        }
        let (k, t) = best.expect("swept at least one count");
        println!("-> provision {k} worker node(s) under BWAP ({t:.2} s)\n");
    }
}
