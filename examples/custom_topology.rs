//! Bring your own machine: describe a custom NUMA topology, profile it,
//! and inspect the canonical weights and the Algorithm 1 mbind plan BWAP
//! would use on it.
//!
//! The machine here is a 6-node "fat ring": two fast central nodes and
//! four slower peripherals, with one weak shortcut — nothing like the
//! reference machines, which is the point.
//!
//! Run with: `cargo run --release --example custom_topology`

use bwap_suite::prelude::*;

fn main() {
    // 1. Describe the machine.
    let mut b = TopologyBuilder::new("fat-ring-6")
        .nodes(2, NodeSpec::new(8, 8.0, 24.0, 36.0)) // central nodes 0, 1
        .nodes(4, NodeSpec::new(4, 8.0, 12.0, 20.0)); // peripherals 2..5
                                                      // central backbone
    b = b.symmetric_link(NodeId(0), NodeId(1), 18.0);
    // each central node feeds two peripherals
    b = b
        .symmetric_link(NodeId(0), NodeId(2), 9.0)
        .symmetric_link(NodeId(0), NodeId(3), 9.0)
        .symmetric_link(NodeId(1), NodeId(4), 9.0)
        .symmetric_link(NodeId(1), NodeId(5), 9.0)
        // a weak shortcut between two peripherals
        .symmetric_link(NodeId(3), NodeId(4), 3.0);
    let machine = b
        .auto_routes()
        .default_path_caps()
        .hop_latencies(95.0, 55.0)
        .build()
        .expect("valid machine");

    println!("single-flow bandwidth matrix (GB/s):");
    println!("{}", bwap_suite::fabric::probe_matrix(&machine));

    // 2. Profile + canonical weights for a 2-worker deployment on the
    // central nodes.
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    let canonical = ProfileBook::canonical_weights(&machine, workers);
    println!("canonical weights for workers {workers}: {canonical}");

    // 3. The DWP dial: where pages sit as data-to-worker proximity rises.
    for dwp in [0.0, 0.5, 1.0] {
        let w = apply_dwp(&canonical, workers, dwp).expect("valid dwp");
        println!("DWP {:>3.0}% -> {w}", dwp * 100.0);
    }

    // 4. The portable enforcement plan (paper Algorithm 1) for a 1 GiB
    // segment at DWP = 0.
    let plan = user_level_plan(262_144, &canonical).expect("plan");
    println!("\nAlgorithm 1 plan for a 262144-page segment:");
    for call in &plan {
        println!(
            "  mbind(pages {:>7}..{:>7}, MPOL_INTERLEAVE, nodes {})",
            call.start_page,
            call.start_page + call.len_pages,
            call.nodes
        );
    }
}
