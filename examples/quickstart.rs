//! Quickstart: compare BWAP against the standard placement policies for
//! one memory-intensive application on the paper's 8-node machine A.
//!
//! Run with: `cargo run --release --example quickstart`

use bwap_suite::prelude::*;

fn main() {
    // The paper's strongly asymmetric 8-node AMD Opteron (Fig. 1a).
    let machine = machines::machine_a();
    println!(
        "machine: {} ({} nodes, {} cores)",
        machine.name(),
        machine.node_count(),
        machine.total_cores()
    );

    // Streamcluster, characterized per the paper's Table I (scaled down
    // ~8x so the example finishes in a couple of seconds of wall time).
    let spec = workloads::streamcluster().scaled_down(8.0);

    // Deploy on the best 2-node worker set (max aggregate inter-worker
    // bandwidth, the paper's thread-placement rule of thumb); the other
    // six nodes host a CPU-bound co-scheduled application.
    let workers = machine.best_worker_set(2);
    println!("worker set: {workers}\n");

    let mut uniform_workers_time = None;
    println!("{:<18} {:>12} {:>14}", "policy", "exec time", "DWP chosen");
    let mut results = Vec::new();
    for policy in PlacementPolicy::evaluation_set() {
        let r = run_coscheduled(&machine, &spec, workers, &policy).expect("scenario runs");
        if r.policy == "uniform-workers" {
            uniform_workers_time = Some(r.exec_time_s);
        }
        println!(
            "{:<18} {:>10.2} s {:>14}",
            r.policy,
            r.exec_time_s,
            r.chosen_dwp.map_or("-".to_string(), |d| format!("{:.0}%", d * 100.0)),
        );
        results.push(r);
    }

    let reference = uniform_workers_time.expect("uniform-workers in evaluation set");
    println!("\nspeedup vs uniform-workers (the state-of-the-art strategy):");
    for r in &results {
        println!("  {:<16} {:.2}x", r.policy, reference / r.exec_time_s);
    }
}
