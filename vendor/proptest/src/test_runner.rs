//! Case execution (subset of `proptest::test_runner`).

use rand::SeedableRng;

/// The RNG property tests sample from.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected samples (filters/`prop_assume!`) across the
    /// whole test before it errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65536 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case is outside the property's domain; retry with new randomness.
    Reject(String),
    /// The property is false for this case.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Attach the sampled-input description to a failure message.
    pub fn with_input(self, desc: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => {
                TestCaseError::Fail(format!("{msg}\n  sampled inputs: {desc}"))
            }
            reject => reject,
        }
    }
}

/// Drive `one_case` until `config.cases` successes (panicking on the first
/// failure, like the real runner). Seeds derive from the test name, so runs
/// are reproducible and independent of test ordering.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = fnv1a(test_name.as_bytes());
    let mut successes: u32 = 0;
    let mut rejects: u32 = 0;
    let mut attempt: u64 = 0;
    while successes < config.cases {
        attempt += 1;
        let mut rng =
            TestRng::seed_from_u64(base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match one_case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejects}); last reason: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {} (attempt {attempt}):\n  {msg}",
                    successes + 1
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}
