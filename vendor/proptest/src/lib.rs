//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Provides the surface this workspace's property tests use — the
//! [`proptest!`] macro, range/collection/`any` strategies, `prop_filter`,
//! `prop_assert*`/`prop_assume` and [`test_runner::ProptestConfig`] — over
//! a deterministic seeded RNG. Differences from the real crate, accepted
//! for offline builds:
//!
//! * **No shrinking.** A failing case reports the exact sampled inputs
//!   (which are reproducible: seeds derive from the test name), but is not
//!   minimized.
//! * **Deterministic runs.** Every execution samples the same cases, so CI
//!   and local runs agree; there is no persistence file.
//!
//! Extend this file rather than adding a network dependency.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module exposed by the real prelude
    /// (`prop::collection::vec(...)` etc.).
    pub mod prop {
        pub use crate::arbitrary;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs its body over sampled inputs.
/// In test code, write each property with a `#[test]` attribute, exactly
/// like the real proptest; the attribute is carried through verbatim.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                $(
                    let $arg = match $crate::strategy::Strategy::sample(&($strat), __rng) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(r) => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(r.0),
                            )
                        }
                    };
                )+
                let __case_desc =
                    format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome.map_err(|e| e.with_input(&__case_desc))
            });
        }
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type. Unlike
/// the real crate there are no `weight =>` arms; repeat an arm to bias
/// the distribution.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

/// Like `assert!`, but fails the property with the sampled inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the property with the sampled inputs attached.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Like `assert_ne!`, but fails the property with the sampled inputs attached.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (retried with fresh randomness, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
