//! `any::<T>()` strategies (subset of `proptest::arbitrary`).

use rand::Rng;

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` — `any::<bool>()` etc.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> Result<A, Rejection> {
        Ok(A::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}
