//! Value-generation strategies (subset of `proptest::strategy`).

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A sample was locally rejected (e.g. by a filter); the runner retries
/// the whole case with fresh randomness.
#[derive(Clone, Debug)]
pub struct Rejection(pub String);

/// A source of random values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: `sample`
/// draws a single concrete value.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Keep only values satisfying `pred`; `reason` is reported when the
    /// filter starves.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Transform sampled values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).sample(rng)
    }
}

/// A strategy that always yields one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        // Retry locally before surrendering the whole case to the runner.
        for _ in 0..64 {
            let v = self.inner.sample(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(format!("filter starved: {}", self.reason)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.sample(rng).map(&self.map)
    }
}
