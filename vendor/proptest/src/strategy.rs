//! Value-generation strategies (subset of `proptest::strategy`).

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A sample was locally rejected (e.g. by a filter); the runner retries
/// the whole case with fresh randomness.
#[derive(Clone, Debug)]
pub struct Rejection(pub String);

/// A source of random values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: `sample`
/// draws a single concrete value.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Keep only values satisfying `pred`; `reason` is reported when the
    /// filter starves.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Transform sampled values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).sample(rng)
    }
}

/// A strategy that always yields one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

/// Tuples of strategies sample component-wise (mirrors the real crate's
/// tuple support, which `proptest!` bodies lean on for compound inputs).
macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Uniform choice among strategies producing the same value type; built by
/// [`prop_oneof!`](crate::prop_oneof) (the real crate's weighted arms are
/// not supported — repeat an arm to bias it).
pub struct Union<T> {
    #[allow(clippy::type_complexity)]
    arms: Vec<Box<dyn Fn(&mut TestRng) -> Result<T, Rejection>>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// An empty union; sampling panics until [`Union::or`] adds an arm.
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Add one equally-likely arm.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(move |rng| s.sample(rng)));
        self
    }
}

impl<T: std::fmt::Debug> Default for Union<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        // Retry locally before surrendering the whole case to the runner.
        for _ in 0..64 {
            let v = self.inner.sample(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(format!("filter starved: {}", self.reason)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.sample(rng).map(&self.map)
    }
}
