//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! This workspace builds in fully offline environments, so the handful of
//! `rand` APIs the suite uses are vendored here: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is SplitMix64 — deterministic for a
//! given seed, statistically solid for simulation and property-testing
//! use, and *not* cryptographically secure (neither is `StdRng`'s use
//! here).
//!
//! Only the APIs the workspace actually exercises are provided; extend
//! this file rather than adding a network dependency.

pub mod rngs;

/// Types that `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. `hi` is exclusive.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `hi` is inclusive.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 span cannot happen for <=64-bit types.
                    unreachable!()
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = rng.unit_f64() as $t;
                let v = lo + (hi - lo) * u;
                if v >= hi {
                    // Rounding landed exactly on `hi`: nudge to the next
                    // representable value below it (direction of the bit
                    // twiddle depends on sign).
                    let below = if hi > 0.0 {
                        <$t>::from_bits(hi.to_bits() - 1)
                    } else if hi == 0.0 {
                        -<$t>::from_bits(1)
                    } else {
                        <$t>::from_bits(hi.to_bits() + 1)
                    };
                    lo.max(below)
                } else {
                    v
                }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        self.unit_f64() < p
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
            let z = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn float_ranges_with_nonpositive_upper_bound_stay_half_open() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            // Regression: the boundary nudge must move *below* `hi` for
            // negative and zero upper bounds too.
            let a = r.gen_range(-12.70703238248825f64..-12.629547119140625);
            assert!((-12.70703238248825..-12.629547119140625).contains(&a), "{a}");
            let b = r.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&b), "{b}");
            let c = r.gen_range(-5.0f32..-4.875);
            assert!((-5.0f32..-4.875).contains(&c), "{c}");
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }
}
