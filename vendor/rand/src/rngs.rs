//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The standard deterministic generator (SplitMix64).
///
/// The real `rand::rngs::StdRng` is a CSPRNG; this offline stand-in is
/// not, but every use in this workspace is seeded simulation/test
/// randomness where only determinism and uniformity matter.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when used
        // as a 64-bit stream.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}
