//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std lock
//! is recovered, matching `parking_lot`'s no-poisoning semantics). The
//! fast-path performance characteristics of the real crate are *not*
//! reproduced — callers here use locks for correctness, not throughput.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (no poisoning, like `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(poison)) => {
                Some(MutexGuard { inner: poison.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
