//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Supports the benchmark surface this workspace uses: `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId` and `black_box`. Instead of criterion's statistical
//! machinery it times a fixed budget per benchmark and prints mean
//! ns/iteration — enough to eyeball regressions and to keep `cargo bench
//! --no-run` compiling in CI. Extend this file rather than adding a
//! network dependency.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Target measurement budget per benchmark at the default sample size.
const DEFAULT_BUDGET: Duration = Duration::from_millis(300);
const DEFAULT_SAMPLE_SIZE: usize = 100;

/// The benchmark manager handed to every target function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: DEFAULT_BUDGET }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.budget, f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: group_name.to_string(), budget: self.budget, _criterion: self }
    }
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Scale the measurement budget with the requested sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget = DEFAULT_BUDGET.mul_f64(n as f64 / DEFAULT_SAMPLE_SIZE as f64);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.budget, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.budget, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// How `iter_batched` amortizes setup cost; the offline harness only uses
/// it to pick a batch length.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures on behalf of one benchmark.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` back-to-back.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One calibration call, then as many as fit in the budget.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        let n = plan_iters(first, self.budget);
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed = start.elapsed() + first;
        self.iters = n + 1;
    }

    /// Measure `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed();
        let n = plan_iters(first, self.budget);
        let mut measured = first;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
        self.iters = n + 1;
    }
}

fn plan_iters(first: Duration, budget: Duration) -> u64 {
    if first.is_zero() {
        return 10_000;
    }
    let n = budget.as_nanos() / first.as_nanos().max(1);
    (n as u64).clamp(1, 100_000)
}

fn run_one<F>(id: &str, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { budget, iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        0.0
    } else {
        bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
    };
    println!("bench: {id:<50} {per_iter:>14.1} ns/iter ({} iters)", bencher.iters);
}

/// Collects benchmark target functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
